"""Benchmarks for the data-lake search facade."""

from _harness import OUTPUT_DIR

from repro.search import DataLake


def test_bench_lake_build(benchmark, study):
    lake = benchmark.pedantic(DataLake, args=(study,), rounds=1, iterations=1)
    assert lake.search("fisheries")


def test_bench_lake_queries(benchmark, study):
    lake = DataLake(study)
    queries = (
        "fisheries landings", "covid testing", "budget appropriations",
        "school enrolment", "crime incidents", "waste collection",
        "population estimates", "air quality",
    )

    def run():
        return [lake.search(q, limit=10) for q in queries]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    hit_counts = [len(hits) for hits in results]
    (OUTPUT_DIR / "search_queries.txt").write_text(
        "\n".join(
            f"{query!r}: {count} hits"
            for query, count in zip(queries, hit_counts)
        )
        + "\n",
        encoding="utf-8",
    )
    assert sum(hit_counts) > 0


def test_bench_join_suggestions(benchmark, study):
    lake = DataLake(study)
    portal = study.portal("CA")
    analysis = portal.joinability()
    resources = [
        analysis.tables[t].resource_id
        for t in sorted(analysis.table_neighbors)[:20]
    ]

    def run():
        return [
            lake.suggest_joins("CA", resource, limit=5)
            for resource in resources
        ]

    suggestions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert any(suggestions)
