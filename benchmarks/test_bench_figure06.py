"""Benchmark regenerating the paper's Figure 6 (minimum candidate key sizes)."""

from _harness import run_and_record


def test_bench_figure06(benchmark, study):
    result = run_and_record(benchmark, study, "figure06")
    assert result.experiment_id == "figure06"
    assert result.data
