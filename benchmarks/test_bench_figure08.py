"""Benchmark regenerating the paper's Figure 8 (expansion-ratio letter values)."""

from _harness import run_and_record


def test_bench_figure08(benchmark, study):
    result = run_and_record(benchmark, study, "figure08")
    assert result.experiment_id == "figure08"
    assert result.data
