"""Tests for the supplementary size-bucket experiment."""

from repro.experiments import supplementary


class TestSupplementary:
    def test_runs(self, study):
        result = supplementary.run(study)
        assert result.experiment_id == "supplementary01"
        assert "paper" in result.data
        assert "size bucket" in result.title

    def test_buckets_cover_sample(self, study):
        result = supplementary.run(study)
        for code in ("CA", "UK", "US"):
            groups = result.data.get(code, {})
            total = sum(cell["n"] for cell in groups.values())
            assert total == len(study.portal(code).labeled_join_sample())

    def test_no_strong_size_correlation(self, study):
        """The paper's finding: usefulness does not track table size.
        We allow wide noise at test scale but the spread must not be
        total (0 -> 1) in every bucket."""
        result = supplementary.run(study)
        spreads = result.data["per_bucket_useful_spread"]
        if spreads:
            assert min(spreads) < 1.0
