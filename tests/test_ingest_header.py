"""Unit tests for repro.ingest.header (the §2.2 inference heuristic)."""

import pytest

from repro.ingest.header import INFERENCE_WINDOW, infer_header


class TestInference:
    def test_plain_header_first_row(self):
        rows = [["a", "b"], ["1", "2"]]
        inference = infer_header(rows)
        assert inference.header_index == 0
        assert inference.num_columns == 2

    def test_skips_title_preamble(self):
        rows = [["Table: Fish Landings"], ["a", "b", "c"], ["1", "2", "3"]]
        inference = infer_header(rows)
        assert inference.header_index == 1
        assert inference.num_columns == 3

    def test_skips_two_cell_preamble(self):
        rows = [["Source:", "DFO"], ["a", "b", "c"], ["1", "2", "3"],
                ["4", "5", "6"]]
        assert infer_header(rows).header_index == 1

    def test_unnamed_header_cell_misses(self):
        # A blank header cell makes the heuristic fall through to the
        # first complete data row — the documented failure mode behind
        # its 93-97% accuracy.
        rows = [["a", "", "c"], ["1", "2", "3"], ["4", "5", "6"]]
        assert infer_header(rows).header_index == 1

    def test_falls_back_to_first_modal_width_row(self):
        # Every row has a missing value: pick the first of modal width.
        rows = [["a", ""], ["1", ""], ["2", ""]]
        assert infer_header(rows).header_index == 0

    def test_width_is_modal_not_max(self):
        rows = [["junk"] * 9] + [["a", "b"], ["1", "2"], ["3", "4"]]
        inference = infer_header(rows)
        assert inference.num_columns == 2
        assert inference.header_index == 1

    def test_tie_breaks_toward_wider(self):
        rows = [["t"], ["a", "b"]]
        assert infer_header(rows).num_columns == 2

    def test_window_bound(self):
        rows = [["a", "b"]] + [["1", "2"]] * (INFERENCE_WINDOW + 100)
        inference = infer_header(rows)
        assert inference.header_index == 0

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            infer_header([])


class TestAccuracyOnGeneratedCorpus:
    def test_header_accuracy_above_ninety_percent(self, study):
        """The paper measured 93-100% accuracy; reproduce the check
        against generator ground truth."""
        total = correct = 0
        for portal in study:
            lineage = portal.generated.lineage
            for ingested in portal.report.clean_tables:
                record = lineage.maybe_get(ingested.resource_id)
                if record is None or record.wide_malformed:
                    continue
                total += 1
                if ingested.header_index == record.preamble_rows:
                    correct += 1
        assert total > 50
        assert correct / total >= 0.90
