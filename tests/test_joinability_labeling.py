"""Tests for the lineage labeling oracle and sampling (§5.3)."""

from collections import Counter

import pytest

from repro.joinability import (
    JoinLabel,
    KEY_KEY,
    KEY_NONKEY,
    LineageOracle,
    NONKEY_NONKEY,
    breakdown,
    breakdown_by,
    key_combination,
    pair_semantic_type,
    stratified_sample,
)
from repro.joinability.coltypes import SemanticType
from repro.joinability.index import ColumnProfile
from repro.joinability.labeling import LabeledPair
from repro.joinability.pairs import JoinablePair


def profile(column_id=0, is_key=False, semantic=SemanticType.CATEGORICAL,
            uniques=20, rows=20):
    return ColumnProfile(
        column_id=column_id,
        table_index=column_id,
        column_name=f"c{column_id}",
        values=frozenset(f"v{i}" for i in range(uniques)),
        is_key=is_key,
        semantic_type=semantic,
        num_rows=rows,
    )


class TestKeyCombination:
    def test_combinations(self):
        key = profile(is_key=True)
        nonkey = profile(is_key=False)
        assert key_combination(key, key) == KEY_KEY
        assert key_combination(key, nonkey) == KEY_NONKEY
        assert key_combination(nonkey, key) == KEY_NONKEY
        assert key_combination(nonkey, nonkey) == NONKEY_NONKEY


class TestPairSemanticType:
    def test_equal_types(self):
        a = profile(semantic=SemanticType.TIMESTAMP)
        assert pair_semantic_type(a, a) is SemanticType.TIMESTAMP

    def test_specific_beats_string(self):
        a = profile(semantic=SemanticType.STRING)
        b = profile(semantic=SemanticType.CATEGORICAL)
        assert pair_semantic_type(a, b) is SemanticType.CATEGORICAL

    def test_incremental_wins(self):
        a = profile(semantic=SemanticType.INCREMENTAL_INTEGER)
        b = profile(semantic=SemanticType.INTEGER)
        assert pair_semantic_type(a, b) is SemanticType.INCREMENTAL_INTEGER


class TestBreakdown:
    def make(self, label, same_dataset=False):
        return LabeledPair(
            pair=JoinablePair(0, 1, 1.0, 10),
            label=label,
            pattern="p",
            same_dataset=same_dataset,
            key_combo=KEY_KEY,
            semantic_type=SemanticType.CATEGORICAL,
            size_bucket="10-100",
            expansion_ratio=1.0,
        )

    def test_fractions(self):
        labeled = [
            self.make(JoinLabel.U_ACC),
            self.make(JoinLabel.R_ACC),
            self.make(JoinLabel.R_ACC),
            self.make(JoinLabel.USEFUL),
        ]
        cell = breakdown(labeled)
        assert cell.total == 4
        assert cell.frac_u_acc == 0.25
        assert cell.frac_r_acc == 0.5
        assert cell.frac_useful == 0.25
        assert cell.frac_accidental == 0.75

    def test_breakdown_by(self):
        labeled = [
            self.make(JoinLabel.USEFUL, same_dataset=True),
            self.make(JoinLabel.U_ACC, same_dataset=False),
        ]
        groups = breakdown_by(labeled, lambda p: p.same_dataset)
        assert groups[True].useful == 1
        assert groups[False].u_acc == 1

    def test_empty_breakdown(self):
        cell = breakdown([])
        assert cell.total == 0
        assert cell.frac_useful == 0.0


class TestOracleOnCorpus:
    @pytest.fixture(scope="class")
    def labeled_ca(self, study):
        return study.portal("CA").labeled_join_sample()

    def test_sample_produced(self, labeled_ca):
        assert len(labeled_ca) >= 20

    def test_incremental_pairs_accidental(self, study):
        """The paper's strongest signal: incremental-integer joins are
        95-100% accidental."""
        pairs = []
        for code in ("CA", "UK", "US"):
            pairs.extend(study.portal(code).labeled_join_sample())
        incremental = [
            p for p in pairs
            if p.semantic_type is SemanticType.INCREMENTAL_INTEGER
        ]
        if incremental:
            accidental = sum(1 for p in incremental if p.label.is_accidental)
            assert accidental / len(incremental) >= 0.9

    def test_majority_accidental(self, study):
        for code in ("CA", "UK", "US"):
            cell = breakdown(study.portal(code).labeled_join_sample())
            assert cell.frac_accidental > 0.5

    def test_intra_dataset_more_useful_than_inter(self, study):
        pairs = []
        for code in ("CA", "UK", "US"):
            pairs.extend(study.portal(code).labeled_join_sample())
        groups = breakdown_by(pairs, lambda p: p.same_dataset)
        if True in groups and False in groups:
            assert groups[True].frac_useful > groups[False].frac_useful

    def test_inter_dataset_useful_pairs_never_u_acc_when_same_dataset(
        self, labeled_ca
    ):
        for pair in labeled_ca:
            if pair.same_dataset:
                # Same-dataset tables are related by construction.
                assert pair.label is not JoinLabel.U_ACC

    def test_patterns_assigned(self, labeled_ca):
        patterns = Counter(p.pattern for p in labeled_ca)
        assert all(isinstance(k, str) and k for k in patterns)


class TestStratifiedSampling:
    def test_subbucket_cap_respected(self, study):
        portal = study.portal("US")
        oracle = LineageOracle.from_recorder(portal.generated.lineage)
        labeled, plan = stratified_sample(
            portal.joinability(), oracle, seed=1, per_subbucket=3
        )
        assert all(count <= 3 for count in plan.filled.values())
        assert len(labeled) == sum(plan.filled.values())

    def test_no_duplicate_pairs(self, study):
        portal = study.portal("US")
        oracle = LineageOracle.from_recorder(portal.generated.lineage)
        labeled, _ = stratified_sample(portal.joinability(), oracle, seed=2)
        keys = [(p.pair.left, p.pair.right) for p in labeled]
        assert len(keys) == len(set(keys))

    def test_same_schema_pairs_excluded(self, study):
        from repro.unionability import schema_fingerprint

        portal = study.portal("UK")
        analysis = portal.joinability()
        for labeled in portal.labeled_join_sample():
            left = analysis.tables[
                analysis.profiles[labeled.pair.left].table_index
            ]
            right = analysis.tables[
                analysis.profiles[labeled.pair.right].table_index
            ]
            assert schema_fingerprint(left.clean) != schema_fingerprint(
                right.clean
            )

    def test_deterministic(self, study):
        portal = study.portal("CA")
        oracle = LineageOracle.from_recorder(portal.generated.lineage)
        a, _ = stratified_sample(portal.joinability(), oracle, seed=9)
        b, _ = stratified_sample(portal.joinability(), oracle, seed=9)
        assert [(p.pair.left, p.pair.right) for p in a] == [
            (p.pair.left, p.pair.right) for p in b
        ]
