"""Tests for serve tracing: span trees, exemplars, ops reconciliation.

The traced fixture runs the smoke mix three times against the shared
study — twice with a trace sink (equal seeds must produce byte-identical
trace files) and once without (the report must not depend on whether a
trace was requested).
"""

import filecmp
from types import SimpleNamespace

import pytest

from repro.obs.log import NORMAL, QUIET, VERBOSE, configure_log
from repro.obs.stats import load_trace
from repro.serve.api import PROBE_ENDPOINTS, Request, canonical_endpoint
from repro.serve.loadgen import MIXES, check_invariants, run_load
from repro.serve.service import LakeService
from repro.serve.tracing import DEFAULT_EXEMPLAR_K


@pytest.fixture(scope="module")
def traced(study, tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-traces")
    config = MIXES["smoke"]()
    first = root / "first.jsonl"
    second = root / "second.jsonl"
    report = run_load(study, config, trace_out=first)
    again = run_load(study, config, trace_out=second)
    untraced = run_load(study, config)
    return SimpleNamespace(
        config=config,
        report=report,
        again=again,
        untraced=untraced,
        first=first,
        second=second,
        trace=load_trace(first),
    )


def request_spans(trace):
    return [s for s in trace.spans if s.get("kind") == "request"]


class TestTraceDeterminism:
    def test_equal_seeds_write_byte_identical_traces(self, traced):
        assert filecmp.cmp(traced.first, traced.second, shallow=False)

    def test_report_does_not_depend_on_trace_sink(self, traced):
        assert traced.report == traced.untraced
        assert traced.report == traced.again


class TestTraceShape:
    def test_trace_is_valid_and_footed(self, traced):
        assert traced.trace.valid, traced.trace.problems
        assert traced.trace.torn == 0
        assert traced.trace.footer["spans"] == len(traced.trace.spans)

    def test_header_carries_run_identity_and_slo(self, traced):
        header = traced.trace.header
        assert header["kind"] == "serve"
        assert header["mix"] == "smoke"
        assert header["seed"] == traced.config.seed
        assert header["clients"] == traced.config.total_clients
        assert header["slo"]["objectives"][0]["kind"] == "availability"

    def test_probes_never_enter_the_trace(self, traced):
        endpoints = {
            s["attrs"]["endpoint"] for s in request_spans(traced.trace)
        }
        assert endpoints
        assert not endpoints & set(PROBE_ENDPOINTS)

    def test_one_request_span_per_non_probe_request(self, traced):
        expected = sum(
            stats["requests"]
            for endpoint, stats in traced.report["per_endpoint"].items()
            if endpoint not in PROBE_ENDPOINTS
        )
        assert len(request_spans(traced.trace)) == expected


class TestOpsReconciliation:
    def test_trace_spans_sum_to_report_request_ops(self, traced):
        # A span's ``ops`` is inclusive of its children, so the request
        # spans alone must account for every op the report charged.
        span_ops = sum(s["ops"] for s in request_spans(traced.trace))
        assert span_ops == traced.report["request_ops"]

    def test_rung_ops_never_exceed_their_request(self, traced):
        for span in request_spans(traced.trace):
            rung_ops = sum(
                c["ops"]
                for c in traced.trace.spans
                if c.get("parent") == span["id"]
            )
            assert rung_ops <= span["ops"]

    def test_report_invariants_hold(self, traced):
        assert traced.report["invariants"]["ops_reconciled"]
        assert check_invariants(traced.report, traced.config) == []


class TestExemplarPolicy:
    def test_every_shed_and_error_keeps_its_rungs(self, traced):
        children = {}
        for span in traced.trace.spans:
            if span.get("parent") is not None:
                children.setdefault(span["parent"], []).append(span)
        failures = [
            s
            for s in request_spans(traced.trace)
            if s["attrs"]["outcome"] in ("shed", "error")
        ]
        assert failures
        for span in failures:
            assert span["attrs"].get("exemplar") is True
            assert children.get(span["id"]), span

    def test_exactly_top_k_served_requests_are_exemplars(self, traced):
        served = [
            s
            for s in request_spans(traced.trace)
            if s["attrs"]["outcome"] in ("ok", "degraded")
        ]
        exemplars = [s for s in served if s["attrs"].get("exemplar")]
        assert len(exemplars) == DEFAULT_EXEMPLAR_K
        # The winners are exactly the slowest served requests: no
        # non-exemplar may cost more ops than the cheapest exemplar.
        floor = min(s["ops"] for s in exemplars)
        others = [s for s in served if not s["attrs"].get("exemplar")]
        assert all(s["ops"] <= floor for s in others)

    def test_non_exemplars_have_no_rung_children(self, traced):
        parents_with_children = {
            s["parent"]
            for s in traced.trace.spans
            if s.get("parent") is not None
        }
        for span in request_spans(traced.trace):
            if not span["attrs"].get("exemplar"):
                assert span["id"] not in parents_with_children

    def test_shed_exemplars_record_the_admission_decision(self, traced):
        children = {}
        for span in traced.trace.spans:
            if span.get("parent") is not None:
                children.setdefault(span["parent"], []).append(span)
        sheds = [
            s
            for s in request_spans(traced.trace)
            if s["attrs"]["outcome"] == "shed"
        ]
        assert sheds
        rejected = 0
        for span in sheds:
            rungs = children[span["id"]]
            assert rungs[0]["name"] == "admission"
            # 429/503 at the door carry the rejecting decision; a shed
            # deeper in the ladder (circuit open, nothing cached) was
            # admitted first.
            decision = rungs[0]["attrs"]["decision"]
            assert decision in ("rate_limited", "shed", "queued", "admitted")
            if span["attrs"]["status"] == 429:
                assert decision == "rate_limited"
                rejected += 1
        assert rejected > 0


class TestEndpointCardinality:
    def test_endpoint_counters_use_canonical_names(self, study):
        service = LakeService(study)
        service.handle(
            Request("/api/3/action/package_list", {"limit": "5"}, {}, "c1")
        )
        service.handle(Request("/definitely/not/a/route", {}, {}, "c1"))
        snapshot = service.metrics.snapshot()
        assert "serve.endpoint.package_list" in snapshot
        assert "serve.endpoint.unknown" in snapshot
        assert not any(
            "/" in name
            for name in snapshot
            if name.startswith("serve.endpoint.")
        )

    def test_canonical_endpoint_mapping(self):
        assert canonical_endpoint("/api/3/action/package_list") == (
            "package_list"
        )
        assert canonical_endpoint("/lake_search") == "lake_search"
        assert canonical_endpoint("/nope") == "unknown"

    def test_probe_requests_skip_the_ops_histograms(self, study):
        service = LakeService(study)
        service.handle(Request("/healthz", {}, {}, "probe"))
        snapshot = service.metrics.snapshot()
        assert "serve.endpoint.healthz" in snapshot
        assert "serve.request.ops" not in snapshot
        service.handle(Request("/lake_search", {"q": "health"}, {}, "c1"))
        assert service.metrics.get("serve.request.ops").total > 0


class TestAccessLog:
    @pytest.fixture(autouse=True)
    def restore_log(self):
        yield
        configure_log(NORMAL)

    def test_request_line_at_normal_verbosity(self, study, capsys):
        configure_log(NORMAL)
        service = LakeService(study)
        service.handle(
            Request("/api/3/action/package_list", {"limit": "5"}, {}, "c1")
        )
        err = capsys.readouterr().err
        assert "[info] serve.request" in err
        assert "endpoint=package_list" in err
        assert "outcome=ok" in err
        assert "status=200" in err
        assert "ops=" in err

    def test_quiet_suppresses_request_lines(self, study, capsys):
        configure_log(QUIET)
        service = LakeService(study)
        service.handle(
            Request("/api/3/action/package_list", {"limit": "5"}, {}, "c1")
        )
        assert "serve.request" not in capsys.readouterr().err

    def test_probes_log_only_at_verbose(self, study, capsys):
        configure_log(NORMAL)
        service = LakeService(study)
        service.handle(Request("/healthz", {}, {}, "probe"))
        assert "serve.request" not in capsys.readouterr().err
        configure_log(VERBOSE)
        service.handle(Request("/healthz", {}, {}, "probe"))
        err = capsys.readouterr().err
        assert "[debug] serve.request" in err
        assert "endpoint=healthz" in err
