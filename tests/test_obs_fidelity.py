"""Tests for the paper-fidelity scoreboard (repro.obs.fidelity)."""

import json

import pytest

from repro.obs import fidelity as fid
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    fidelity_checks,
    run_experiment,
)


class TestVerdictAlgebra:
    def test_worst_ordering(self):
        assert fid.worst([]) == fid.PASS
        assert fid.worst([fid.PASS, fid.PASS]) == fid.PASS
        assert fid.worst([fid.PASS, fid.NEAR]) == fid.NEAR
        assert fid.worst([fid.NEAR, fid.DIVERGENT, fid.PASS]) == fid.DIVERGENT


class TestMeasuredValue:
    def test_portal_metric_lookup(self):
        data = {"SG": {"x": 1}, "CA": {"x": 2}, "summary": "text"}
        assert fid.measured_value(data, "x", "SG") == 1
        assert fid.measured_value(data, "x", "CA") == 2

    def test_missing_is_none_not_keyerror(self):
        assert fid.measured_value({}, "x", "SG") is None
        assert fid.measured_value({"SG": {}}, "x", "SG") is None
        assert fid.measured_value({"SG": "not a dict"}, "x", "SG") is None


class TestRankCheck:
    PAPER = {"m": {"SG": 10, "CA": 20, "UK": 30, "US": 40}}

    def _eval(self, data, **kw):
        return fid.evaluate_checks(
            [fid.rank("m", **kw)], self.PAPER, data
        )[0]

    def test_matching_order_passes(self):
        data = {c: {"m": v} for c, v in [("SG", 1), ("CA", 2), ("UK", 3), ("US", 4)]}
        assert self._eval(data).verdict == fid.PASS

    def test_one_inversion_is_near(self):
        data = {c: {"m": v} for c, v in [("SG", 2), ("CA", 1), ("UK", 3), ("US", 4)]}
        assert self._eval(data).verdict == fid.NEAR

    def test_many_inversions_diverge(self):
        data = {c: {"m": v} for c, v in [("SG", 4), ("CA", 3), ("UK", 2), ("US", 1)]}
        assert self._eval(data).verdict == fid.DIVERGENT

    def test_ends_min_only_checks_the_anchor(self):
        # SG stays lowest; the CA/UK/US shuffle is invisible to ends="min".
        data = {c: {"m": v} for c, v in [("SG", 1), ("CA", 9), ("UK", 3), ("US", 5)]}
        assert self._eval(data, ends="min").verdict == fid.PASS
        data["SG"]["m"] = 99
        assert self._eval(data, ends="min").verdict == fid.DIVERGENT

    def test_missing_portal_diverges(self):
        data = {"SG": {"m": 1}, "CA": {"m": 2}, "UK": {"m": 3}}
        result = self._eval(data)
        assert result.verdict == fid.DIVERGENT
        assert "missing" in result.detail


class TestRelativeAndAbsolute:
    def test_relative_tolerance_tiers(self):
        paper = {"r": {"SG": 100.0}}
        for measured, expected in [
            (110.0, fid.PASS),
            (130.0, fid.NEAR),
            (200.0, fid.DIVERGENT),
        ]:
            result = fid.evaluate_checks(
                [fid.relative("r")], paper, {"SG": {"r": measured}}
            )[0]
            assert result.verdict == expected, measured

    def test_relative_zero_paper_uses_abs_fallback(self):
        paper = {"r": {"SG": 0.0}}
        ok = fid.evaluate_checks(
            [fid.relative("r")], paper, {"SG": {"r": 0.01}}
        )[0]
        assert ok.verdict == fid.PASS
        bad = fid.evaluate_checks(
            [fid.relative("r")], paper, {"SG": {"r": 5.0}}
        )[0]
        assert bad.verdict == fid.DIVERGENT

    def test_absolute_tolerance_tiers(self):
        paper = {"f": {"SG": 0.5}}
        for measured, expected in [
            (0.53, fid.PASS),
            (0.65, fid.NEAR),
            (0.9, fid.DIVERGENT),
        ]:
            result = fid.evaluate_checks(
                [fid.absolute("f")], paper, {"SG": {"f": measured}}
            )[0]
            assert result.verdict == expected, measured


class TestBandCheck:
    def test_ratio_band_tiers(self):
        paper = {"n": {"SG": 1000}}
        for measured, expected in [
            (800, fid.PASS),       # ratio 0.8 in [0.5, 2]
            (300, fid.NEAR),       # 0.3 within near widening (0.5/3)
            (10, fid.DIVERGENT),   # 0.01 outside even the near band
        ]:
            result = fid.evaluate_checks(
                [fid.band("n", 0.5, 2.0)], paper, {"SG": {"n": measured}}
            )[0]
            assert result.verdict == expected, measured

    def test_scalar_paper_needs_measure(self):
        with pytest.raises(ValueError):
            fid.evaluate_checks([fid.band("n", 0.5, 2.0)], {"n": 10}, {})


class TestClaimAndOrder:
    def test_claim_recomputes_boolean(self):
        paper = {"holds": True}
        check = fid.claim("holds", lambda data: data["x"] > 0)
        assert fid.evaluate_checks([check], paper, {"x": 1})[0].verdict == fid.PASS
        assert (
            fid.evaluate_checks([check], paper, {"x": -1})[0].verdict
            == fid.DIVERGENT
        )

    def test_order_against_value_key(self):
        paper = {"size_order": ("SG", "CA", "US")}
        data = {"SG": {"b": 1}, "CA": {"b": 5}, "US": {"b": 9}}
        check = fid.order("size_order", value_key="b")
        assert fid.evaluate_checks([check], paper, data)[0].verdict == fid.PASS
        data["SG"]["b"] = 7  # one adjacent swap -> NEAR
        assert fid.evaluate_checks([check], paper, data)[0].verdict == fid.NEAR


class TestSpecIntegrity:
    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            fid.evaluate_checks([fid.relative("ghost")], {"real": 1}, {})

    def test_uncovered_metrics_lists_gaps(self):
        checks = [fid.relative("a")]
        assert fid.uncovered_metrics(checks, {"a": 1, "b": 2}) == ["b"]

    @pytest.mark.parametrize("experiment_id", experiment_ids())
    def test_every_paper_metric_is_covered(self, experiment_id):
        module = EXPERIMENTS[experiment_id]
        assert fid.uncovered_metrics(module.FIDELITY, module.PAPER) == []

    @pytest.mark.parametrize("experiment_id", experiment_ids())
    def test_specs_reference_only_paper_metrics(self, experiment_id):
        module = EXPERIMENTS[experiment_id]
        for check in module.FIDELITY:
            assert check.metric in module.PAPER

    def test_registry_rejects_unknown_experiment(self):
        with pytest.raises(KeyError):
            fidelity_checks("table99")


class TestScoreboardIntegration:
    """End-to-end over the shared session study (TEST_SCALE corpus)."""

    def test_every_experiment_gets_a_verdict(self, study):
        board = [
            fid.evaluate_experiment(
                run_experiment(experiment_id, study),
                fidelity_checks(experiment_id),
            )
            for experiment_id in experiment_ids()
        ]
        assert [row.experiment_id for row in board] == experiment_ids()
        for row in board:
            assert row.verdict in (fid.PASS, fid.NEAR, fid.DIVERGENT)
            assert row.checks, row.experiment_id

    def test_scoreboard_json_shape_and_determinism(self, study):
        def build():
            board = [
                fid.evaluate_experiment(
                    run_experiment(experiment_id, study),
                    fidelity_checks(experiment_id),
                )
                for experiment_id in experiment_ids()
            ]
            return fid.scoreboard_json(board, meta={"scale": 0.18, "seed": 3})

        doc_a, doc_b = build(), build()
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(
            doc_b, sort_keys=True
        )
        assert doc_a["meta"] == {"scale": 0.18, "seed": 3}
        assert sum(doc_a["tally"].values()) == len(experiment_ids())
        assert doc_a["verdict"] == fid.worst(
            [row["verdict"] for row in doc_a["experiments"]]
        )

    def test_verdicts_reconcile_with_reporting_rows(self, study):
        """A scoreboard's measured values are reporting.py's values."""
        result = run_experiment("table01", study)
        row = fid.evaluate_experiment(
            result, fidelity_checks("table01")
        ).checks[0]
        paper = result.data["paper"]
        for code in paper[row.metric]:
            assert row.measured[code] == fid.measured_value(
                result.data, row.metric, code
            )

    def test_render_scoreboard_lists_every_experiment(self, study):
        board = [
            fid.evaluate_experiment(
                run_experiment(experiment_id, study),
                fidelity_checks(experiment_id),
            )
            for experiment_id in experiment_ids()
        ]
        text = fid.render_scoreboard(board, meta={"seed": 3})
        for experiment_id in experiment_ids():
            assert experiment_id in text
        assert "overall:" in text
