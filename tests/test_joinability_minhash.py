"""Tests for the MinHash/LSH approximate join search."""

import pytest

from repro.joinability.minhash import (
    LshIndex,
    MinHasher,
    approximate_joinable_pairs,
    estimate_jaccard,
)
from repro.joinability.index import build_profiles
from repro.dataframe import Column, Table
from tests.test_joinability_pairs import wrap


class TestMinHash:
    def test_identical_sets_estimate_one(self):
        hasher = MinHasher.create(num_perm=64)
        values = [f"v{i}" for i in range(100)]
        assert estimate_jaccard(
            hasher.signature(values), hasher.signature(values)
        ) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        hasher = MinHasher.create(num_perm=128)
        a = hasher.signature([f"a{i}" for i in range(100)])
        b = hasher.signature([f"b{i}" for i in range(100)])
        assert estimate_jaccard(a, b) < 0.15

    def test_estimate_tracks_true_jaccard(self):
        hasher = MinHasher.create(num_perm=256)
        base = [f"v{i}" for i in range(100)]
        overlapping = base[:80] + [f"w{i}" for i in range(20)]
        true_jaccard = 80 / 120
        estimate = estimate_jaccard(
            hasher.signature(base), hasher.signature(overlapping)
        )
        assert abs(estimate - true_jaccard) < 0.12

    def test_signature_deterministic(self):
        hasher = MinHasher.create(num_perm=32, seed=5)
        values = ["x", "y", "z"]
        assert hasher.signature(values) == hasher.signature(values)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            estimate_jaccard((1, 2), (1,))

    def test_empty_set(self):
        hasher = MinHasher.create(num_perm=16)
        signature = hasher.signature([])
        assert len(signature) == 16

    def test_coefficients_derived_from_sha256_stream(self):
        """Pinned values: the hasher must be stable across Python
        versions (persisted index signatures depend on it), so the
        coefficients come from sha256, not ``random.Random``."""
        import hashlib

        from repro.joinability.minhash import _MERSENNE

        hasher = MinHasher.create(num_perm=4, seed=9)
        for i, (a, b) in enumerate(hasher.coefficients):
            digest = hashlib.sha256(f"minhash:9:{i}".encode()).digest()
            assert a == int.from_bytes(digest[:16], "big") % (_MERSENNE - 1) + 1
            assert b == int.from_bytes(digest[16:], "big") % _MERSENNE

    def test_legacy_hasher_matches_random_module(self):
        """The compat shim reproduces the pre-sha256 coefficient draw."""
        import random

        from repro.joinability.minhash import _MERSENNE

        rng = random.Random(5)
        expected = tuple(
            (rng.randrange(1, _MERSENNE), rng.randrange(0, _MERSENNE))
            for _ in range(8)
        )
        legacy = MinHasher.create_legacy(num_perm=8, seed=5)
        assert legacy.coefficients == expected
        assert legacy.coefficients != MinHasher.create(
            num_perm=8, seed=5
        ).coefficients


class TestLshIndex:
    def test_near_duplicates_bucketed_together(self):
        hasher = MinHasher.create(num_perm=128)
        index = LshIndex(hasher=hasher, bands=32)
        base = [f"v{i}" for i in range(200)]
        index.add(0, base)
        index.add(1, base[:195] + [f"x{i}" for i in range(5)])
        index.add(2, [f"z{i}" for i in range(200)])
        pairs = index.candidate_pairs()
        assert (0, 1) in pairs
        assert (0, 2) not in pairs and (1, 2) not in pairs


class TestApproximateSearch:
    def test_recall_against_exact(self):
        shared = [f"v{i}" for i in range(60)]
        tables = []
        for i in range(5):
            tables.append(
                wrap(
                    Table(f"t{i}", [Column("a", list(shared))]),
                    resource=f"r{i}",
                )
            )
        tables.append(
            wrap(
                Table("odd", [Column("a", [f"o{i}" for i in range(60)])]),
                resource="odd",
            )
        )
        profiles, _ = build_profiles(tables)
        approx = approximate_joinable_pairs(profiles, threshold=0.8)
        found = {(l, r) for l, r, _ in approx}
        expected = {(i, j) for i in range(5) for j in range(i + 1, 5)}
        assert expected <= found
        assert all("odd" not in (profiles[l].column_name,) for l, r, _ in approx)
