"""Unit tests for the portal substrate: store, http, ckan, compress."""

import datetime

import pytest

from repro.portal import (
    BlobStore,
    CkanApi,
    CkanApiError,
    Dataset,
    FailureMode,
    HttpClient,
    HttpError,
    MetadataKind,
    Portal,
    Resource,
    compressed_size,
    compression_ratio,
)


def make_portal() -> Portal:
    resource = Resource("r1", "data", "CSV", "https://x/r1.csv")
    pdf = Resource("r2", "notes", "PDF", "https://x/r2.pdf")
    dataset = Dataset(
        dataset_id="d1",
        title="Fish",
        description="fish data",
        topic="fisheries",
        organization="DFO",
        published=datetime.date(2020, 1, 1),
        metadata_kind=MetadataKind.LACKING,
        resources=(resource, pdf),
    )
    return Portal(code="CA", name="Canada", datasets=[dataset])


class TestModels:
    def test_csv_resources_filter(self):
        portal = make_portal()
        dataset = portal.datasets[0]
        assert [r.resource_id for r in dataset.csv_resources] == ["r1"]
        assert portal.num_tables == 1
        assert portal.num_datasets == 1

    def test_claims_csv_case_insensitive(self):
        assert Resource("r", "n", " csv ", "u").claims_csv
        assert not Resource("r", "n", "CSV-DICT", "u").claims_csv

    def test_dataset_lookup(self):
        portal = make_portal()
        assert portal.dataset("d1").title == "Fish"
        with pytest.raises(KeyError):
            portal.dataset("nope")


class TestBlobStore:
    def test_put_get(self):
        store = BlobStore()
        store.put("u", b"abc")
        blob = store.get("u")
        assert blob is not None and blob.ok and blob.content == b"abc"
        assert "u" in store
        assert len(store) == 1
        assert store.total_bytes() == 3

    def test_failures_not_counted_in_bytes(self):
        store = BlobStore()
        store.put_failure("u", FailureMode.NOT_FOUND)
        assert store.total_bytes() == 0
        assert not store.get("u").ok

    def test_unknown_url(self):
        assert BlobStore().get("nope") is None


class TestHttpClient:
    def test_fetch_success(self):
        store = BlobStore()
        store.put("u", b"data")
        response = HttpClient(store).fetch("u")
        assert response.ok and response.status == 200
        assert response.content == b"data"

    def test_fetch_404_for_unknown(self):
        response = HttpClient(BlobStore()).fetch("u")
        assert response.status == 404 and not response.ok

    @pytest.mark.parametrize(
        "mode,status",
        [
            (FailureMode.NOT_FOUND, 404),
            (FailureMode.GONE, 410),
            (FailureMode.SERVER_ERROR, 500),
        ],
    )
    def test_fetch_failures(self, mode, status):
        store = BlobStore()
        store.put_failure("u", mode)
        assert HttpClient(store).fetch("u").status == status

    def test_timeout_raises_and_try_fetch_softens(self):
        store = BlobStore()
        store.put_failure("u", FailureMode.TIMEOUT)
        client = HttpClient(store)
        with pytest.raises(HttpError):
            client.fetch("u")
        assert client.try_fetch("u").status == 0

    def test_request_counter(self):
        client = HttpClient(BlobStore())
        client.try_fetch("a")
        client.try_fetch("b")
        assert client.requests_made == 2


class TestCkanApi:
    def test_package_list_and_show(self):
        api = CkanApi(make_portal())
        assert api.package_list() == ["d1"]
        package = api.package_show("d1")
        assert package["title"] == "Fish"
        assert package["resources"][0]["format"] == "CSV"
        assert package["organization"]["title"] == "DFO"

    def test_unknown_package(self):
        with pytest.raises(CkanApiError):
            CkanApi(make_portal()).package_show("nope")

    def test_search_all(self):
        packages = CkanApi(make_portal()).package_search_all()
        assert len(packages) == 1
        assert packages[0]["id"] == "d1"


class TestCompression:
    def test_repetitive_data_compresses_well(self):
        payload = b"Ontario,2020,100\n" * 1000
        assert compression_ratio(payload) > 5.0

    def test_random_data_compresses_poorly(self):
        import os

        payload = os.urandom(4096)
        assert compression_ratio(payload) < 1.2

    def test_compressed_size_positive(self):
        assert compressed_size(b"abc") > 0

    def test_empty_ratio_is_one(self):
        assert compression_ratio(b"") == 1.0
