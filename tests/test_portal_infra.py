"""Unit tests for the portal substrate: store, http, ckan, compress."""

import datetime

import pytest

from repro.portal import (
    STATUS_TIMEOUT,
    BlobOverwriteError,
    BlobStore,
    CkanApi,
    CkanApiError,
    Dataset,
    FailureMode,
    HttpClient,
    HttpError,
    MetadataKind,
    Portal,
    Resource,
    TransientFault,
    compressed_size,
    compression_ratio,
)


def make_portal() -> Portal:
    resource = Resource("r1", "data", "CSV", "https://x/r1.csv")
    pdf = Resource("r2", "notes", "PDF", "https://x/r2.pdf")
    dataset = Dataset(
        dataset_id="d1",
        title="Fish",
        description="fish data",
        topic="fisheries",
        organization="DFO",
        published=datetime.date(2020, 1, 1),
        metadata_kind=MetadataKind.LACKING,
        resources=(resource, pdf),
    )
    return Portal(code="CA", name="Canada", datasets=[dataset])


class TestModels:
    def test_csv_resources_filter(self):
        portal = make_portal()
        dataset = portal.datasets[0]
        assert [r.resource_id for r in dataset.csv_resources] == ["r1"]
        assert portal.num_tables == 1
        assert portal.num_datasets == 1

    def test_claims_csv_case_insensitive(self):
        assert Resource("r", "n", " csv ", "u").claims_csv
        assert not Resource("r", "n", "CSV-DICT", "u").claims_csv

    def test_dataset_lookup(self):
        portal = make_portal()
        assert portal.dataset("d1").title == "Fish"
        with pytest.raises(KeyError):
            portal.dataset("nope")


class TestBlobStore:
    def test_put_get(self):
        store = BlobStore()
        store.put("u", b"abc")
        blob = store.get("u")
        assert blob is not None and blob.ok and blob.content == b"abc"
        assert "u" in store
        assert len(store) == 1
        assert store.total_bytes() == 3

    def test_failures_not_counted_in_bytes(self):
        store = BlobStore()
        store.put_failure("u", FailureMode.NOT_FOUND)
        assert store.total_bytes() == 0
        assert not store.get("u").ok

    def test_unknown_url(self):
        assert BlobStore().get("nope") is None

    def test_put_refuses_silent_overwrite(self):
        store = BlobStore()
        store.put("u", b"original")
        with pytest.raises(BlobOverwriteError):
            store.put("u", b"clobbered")
        assert store.get("u").content == b"original"

    def test_put_cannot_silently_unfail_a_url(self):
        # Re-marking a failed URL as successful desynchronizes catalog,
        # lineage, and journal — it must be an explicit replace.
        store = BlobStore()
        store.put_failure("u", FailureMode.GONE)
        with pytest.raises(BlobOverwriteError):
            store.put("u", b"back from the dead")
        with pytest.raises(BlobOverwriteError):
            store.put_failure("u", FailureMode.NOT_FOUND)
        assert store.get("u").failure is FailureMode.GONE

    def test_put_replace_is_explicit(self):
        store = BlobStore()
        store.put("u", b"v1")
        store.put("u", b"v2", replace=True)
        assert store.get("u").content == b"v2"

    def test_put_transient_records_fault(self):
        store = BlobStore()
        fault = TransientFault(
            FailureMode.RATE_LIMITED, failures=2, retry_after=3.0
        )
        store.put_transient("u", b"data", fault)
        blob = store.get("u")
        assert blob.ok  # eventually successful
        assert blob.transient.failures == 2
        assert blob.transient.retry_after == 3.0

    def test_transient_fault_rejects_permanent_modes(self):
        with pytest.raises(ValueError):
            TransientFault(FailureMode.NOT_FOUND, failures=1)
        with pytest.raises(ValueError):
            TransientFault(FailureMode.TIMEOUT, failures=0)

    def test_put_truncated_declares_full_length(self):
        store = BlobStore()
        store.put_truncated("u", b"abcdefgh", truncate_at=3)
        blob = store.get("u")
        assert blob.content == b"abc"
        assert blob.declared_length == 8
        assert blob.truncated
        with pytest.raises(ValueError):
            store.put_truncated("v", b"ab", truncate_at=2)


class TestHttpClient:
    def test_fetch_success(self):
        store = BlobStore()
        store.put("u", b"data")
        response = HttpClient(store).fetch("u")
        assert response.ok and response.status == 200
        assert response.content == b"data"

    def test_fetch_404_for_unknown(self):
        response = HttpClient(BlobStore()).fetch("u")
        assert response.status == 404 and not response.ok

    @pytest.mark.parametrize(
        "mode,status",
        [
            (FailureMode.NOT_FOUND, 404),
            (FailureMode.GONE, 410),
            (FailureMode.SERVER_ERROR, 500),
        ],
    )
    def test_fetch_failures(self, mode, status):
        store = BlobStore()
        store.put_failure("u", mode)
        assert HttpClient(store).fetch("u").status == status

    def test_timeout_raises_and_try_fetch_softens(self):
        store = BlobStore()
        store.put_failure("u", FailureMode.TIMEOUT)
        client = HttpClient(store)
        with pytest.raises(HttpError):
            client.fetch("u")
        # Timeouts map to the distinct sentinel, never a real status.
        response = client.try_fetch("u")
        assert response.status == STATUS_TIMEOUT
        assert response.timed_out and not response.ok

    def test_timeout_sentinel_is_not_a_real_status(self):
        assert STATUS_TIMEOUT == -1
        assert FailureMode.TIMEOUT.value == STATUS_TIMEOUT

    def test_request_counter(self):
        client = HttpClient(BlobStore())
        client.try_fetch("a")
        client.try_fetch("b")
        assert client.requests_made == 2

    def test_transient_blob_fails_then_succeeds(self):
        store = BlobStore()
        store.put_transient(
            "u",
            b"payload",
            TransientFault(
                FailureMode.UNAVAILABLE, failures=2, retry_after=2.5
            ),
        )
        client = HttpClient(store)
        first = client.try_fetch("u")
        second = client.try_fetch("u")
        third = client.try_fetch("u")
        assert (first.status, second.status) == (503, 503)
        assert first.retry_after == 2.5
        assert third.ok and third.content == b"payload"
        assert client.attempts_for("u") == 3

    def test_transient_timeout_raises_until_cleared(self):
        store = BlobStore()
        store.put_transient(
            "u", b"x", TransientFault(FailureMode.TIMEOUT, failures=1)
        )
        client = HttpClient(store)
        with pytest.raises(HttpError):
            client.fetch("u")
        assert client.fetch("u").ok

    def test_truncated_body_is_detectable(self):
        store = BlobStore()
        store.put_truncated("u", b"a,b\n1,2\n3,4\n", truncate_at=6)
        response = HttpClient(store).fetch("u")
        assert response.ok  # downloadable per the paper's status test
        assert response.truncated
        assert response.declared_length == 12
        assert len(response.content) == 6


class TestCkanApi:
    def test_package_list_and_show(self):
        api = CkanApi(make_portal())
        assert api.package_list() == ["d1"]
        package = api.package_show("d1")
        assert package["title"] == "Fish"
        assert package["resources"][0]["format"] == "CSV"
        assert package["organization"]["title"] == "DFO"

    def test_unknown_package(self):
        with pytest.raises(CkanApiError):
            CkanApi(make_portal()).package_show("nope")

    def test_error_carries_structured_payload(self):
        # The serve layer renders CKAN-style JSON 404s from these
        # fields; they are API surface, not just message text.
        with pytest.raises(CkanApiError) as err:
            CkanApi(make_portal()).package_show("nope")
        assert err.value.code == 404
        assert err.value.entity == "nope"
        assert err.value.kind == "package"
        assert "nope" in str(err.value)
        assert not isinstance(err.value, KeyError)

    def test_search_all(self):
        packages = CkanApi(make_portal()).package_search_all()
        assert len(packages) == 1
        assert packages[0]["id"] == "d1"


class TestCompression:
    def test_repetitive_data_compresses_well(self):
        payload = b"Ontario,2020,100\n" * 1000
        assert compression_ratio(payload) > 5.0

    def test_random_data_compresses_poorly(self):
        import os

        payload = os.urandom(4096)
        assert compression_ratio(payload) < 1.2

    def test_compressed_size_positive(self):
        assert compressed_size(b"abc") > 0

    def test_empty_ratio_is_one(self):
        assert compression_ratio(b"") == 1.0
