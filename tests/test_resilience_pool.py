"""Crash-supervised sharded execution (repro.resilience.pool).

The headline contract — a pooled run is *byte-equivalent* to the serial
guarded run — is checked the same way CI checks it: run the same
experiments serially, pooled, and pooled under chaos kills, then assert
the trace diff is empty and the reproduced texts are identical.  The
fault machinery (stragglers, poison units, retry exhaustion) is
exercised end-to-end on the poison corpus.
"""

import json
import pathlib

import pytest

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.experiments.cli import build_parser, config_from_args
from repro.experiments.registry import run_experiment
from repro.obs.diff import diff_runs, load_run
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import load_trace
from repro.resilience import StageStatus
from repro.resilience.pool import (
    HEARTBEAT_TICKS,
    SupervisedMeter,
    _Supervisor,
    _build_portal_tables,
    _chaos_kill_tick,
    _poison_record,
    plan_study_units,
    read_shard,
    shard_fingerprint,
)
from repro.resilience.units import (
    FD_STAGE,
    SCREEN_STAGE,
    PlannedUnit,
    plan_portal_units,
)

SCALE = 0.05
SEED = 7
EXPERIMENTS = ("table05", "table06", "table11")


def guarded_config(tmp_path, **overrides):
    """The shared guarded study shape of the equivalence runs."""
    return StudyConfig(
        scale=SCALE,
        seed=SEED,
        stage_budget=40_000,
        poison_rate=0.25,
        trace_out=str(tmp_path / "trace.jsonl"),
        **overrides,
    )


def run_study(config):
    study = Study.build(config)
    try:
        return {eid: run_experiment(eid, study).text for eid in EXPERIMENTS}
    finally:
        study.close()


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("serial")
    config = guarded_config(tmp_path, workers=1)
    texts = run_study(config)
    return config, texts


@pytest.fixture(scope="module")
def pooled_run(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("pooled")
    config = guarded_config(
        tmp_path, workers=3, shard_dir=str(tmp_path / "shards")
    )
    texts = run_study(config)
    return config, texts


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("chaos")
    config = guarded_config(tmp_path, workers=3, chaos_kill_rate=0.2)
    texts = run_study(config)
    return config, texts


class TestPlan:
    @pytest.fixture(scope="class")
    def study(self):
        study = Study.build(StudyConfig(scale=SCALE, seed=SEED))
        yield study
        study.close()

    def test_screen_unit_per_clean_table(self, study):
        for portal in study:
            units = plan_portal_units(portal.code, portal.report)
            screens = {
                u.table_id for u in units if u.stage == SCREEN_STAGE
            }
            clean = {
                t.resource_id
                for t in portal.report.clean_tables
                if t.clean is not None
            }
            assert screens == clean

    def test_fd_units_depend_on_own_screen(self, study):
        for portal in study:
            units = plan_portal_units(portal.code, portal.report)
            screens = {u.key for u in units if u.stage == SCREEN_STAGE}
            fds = [u for u in units if u.stage == FD_STAGE]
            assert fds, "size filter admitted no fd units at this scale"
            for unit in fds:
                assert unit.depends_on in screens
                assert unit.depends_on == (
                    portal.code,
                    SCREEN_STAGE,
                    unit.table_id,
                )

    def test_study_plan_without_journal_has_no_external(self, study):
        plan, external = plan_study_units({p.code: p for p in study})
        assert external == {}
        assert len(plan) == sum(
            len(plan_portal_units(p.code, p.report)) for p in study
        )

    def test_joinsig_unit_per_clean_table(self, study):
        from repro.resilience.units import JOINSIG_STAGE

        for portal in study:
            units = plan_portal_units(portal.code, portal.report)
            joinsigs = [u for u in units if u.stage == JOINSIG_STAGE]
            assert {u.table_id for u in joinsigs} == {
                t.resource_id
                for t in portal.report.clean_tables
                if t.clean is not None
            }
            # Signature building waits for (and dies with) the screen.
            for unit in joinsigs:
                assert unit.depends_on == (
                    portal.code,
                    SCREEN_STAGE,
                    unit.table_id,
                )

    def test_allpairs_config_plans_no_joinsig_units(self, study):
        from repro.resilience.units import (
            JOINSIG_STAGE,
            UNIT_STAGES,
            unit_stages_for,
        )

        lsh = StudyConfig(scale=SCALE, seed=SEED)
        allpairs = StudyConfig(
            scale=SCALE, seed=SEED, join_index="allpairs"
        )
        assert unit_stages_for(lsh) == UNIT_STAGES
        assert JOINSIG_STAGE not in unit_stages_for(allpairs)
        portal = next(iter(study))
        units = plan_portal_units(
            portal.code, portal.report, unit_stages_for(allpairs)
        )
        assert all(u.stage != JOINSIG_STAGE for u in units)


class TestEquivalence:
    def test_pooled_trace_diffs_empty_against_serial(
        self, serial_run, pooled_run
    ):
        report = diff_runs(
            load_run(serial_run[0].trace_out),
            load_run(pooled_run[0].trace_out),
        )
        assert not report.has_drift, report.as_json()

    def test_chaos_trace_diffs_empty_against_serial(
        self, serial_run, chaos_run
    ):
        report = diff_runs(
            load_run(serial_run[0].trace_out),
            load_run(chaos_run[0].trace_out),
        )
        assert not report.has_drift, report.as_json()

    def test_reproduced_texts_identical(
        self, serial_run, pooled_run, chaos_run
    ):
        assert serial_run[1] == pooled_run[1] == chaos_run[1]

    def test_chaos_actually_killed_workers(self, chaos_run):
        metrics = load_trace(chaos_run[0].trace_out).metrics
        assert metrics["pool.worker_deaths"]["value"] > 0
        assert metrics["pool.redispatches"]["value"] > 0
        assert metrics["pool.worker_restarts"]["value"] > 0

    def test_serial_trace_has_no_pool_artifacts(self, serial_run):
        trace = load_trace(serial_run[0].trace_out)
        assert not [
            s for s in trace.spans if s.get("kind") in ("pool", "lane")
        ]
        assert not [
            name for name in trace.metrics if name.startswith("pool.")
        ]
        assert "workers" not in trace.header


class TestLanes:
    def test_pool_span_and_lane_spans_present(self, pooled_run):
        trace = load_trace(pooled_run[0].trace_out)
        pools = [s for s in trace.spans if s.get("kind") == "pool"]
        lanes = [s for s in trace.spans if s.get("kind") == "lane"]
        assert len(pools) == 1
        assert pools[0]["attrs"]["workers"] == 3
        assert len(lanes) == 3
        assert trace.header["workers"] == 3

    def test_lane_ops_reconcile_with_adopted_unit_ticks(self, pooled_run):
        """Sum of per-lane op tallies equals the self-ops of every unit
        span the executors adopted — no work is double- or un-counted."""
        trace = load_trace(pooled_run[0].trace_out)
        lane_ops = sum(
            s["attrs"]["lane_ops"]
            for s in trace.spans
            if s.get("kind") == "lane"
        )
        adopted_ops = sum(
            s.get("self_ops", 0)
            for s in trace.spans
            if s.get("kind") == "unit" and "worker" in s.get("attrs", {})
        )
        assert lane_ops == adopted_ops > 0

    def test_lane_spans_carry_zero_self_ops(self, pooled_run):
        """Lanes are bookkeeping, not attribution: drift comparison and
        `ogdp-repro stats` must never see their ops twice."""
        trace = load_trace(pooled_run[0].trace_out)
        assert all(
            s.get("self_ops") == 0
            for s in trace.spans
            if s.get("kind") in ("pool", "lane")
        )


class TestShards:
    def test_shard_files_persisted_with_fingerprint(self, pooled_run):
        config, _ = pooled_run
        shards = sorted(
            pathlib.Path(config.shard_dir).glob("shard-*.jsonl")
        )
        assert shards
        fingerprint = shard_fingerprint(config)
        total = 0
        for shard in shards:
            header = json.loads(
                shard.read_text(encoding="utf-8").splitlines()[0]
            )
            assert header["fingerprint"] == fingerprint
            total += len(read_shard(shard, fingerprint))
        assert total > 0

    def test_foreign_fingerprint_rejected_wholesale(self, pooled_run):
        config, _ = pooled_run
        shard = sorted(
            pathlib.Path(config.shard_dir).glob("shard-*.jsonl")
        )[0]
        foreign = dict(shard_fingerprint(config), seed=config.seed + 1)
        assert read_shard(shard, foreign) == []


class TestPoisonEscalation:
    @pytest.fixture(scope="class")
    def escalated(self, tmp_path_factory):
        """Poison corpus under a straggler threshold below the stage
        budget: every poison unit overruns the threshold and is either
        straggler-killed into retry exhaustion or (when its budget
        fires before the supervisor's SIGKILL lands) budget-quarantined
        — both paths must converge to QUARANTINED and a finished study."""
        tmp_path = tmp_path_factory.mktemp("escalate")
        config = StudyConfig(
            scale=SCALE,
            seed=SEED,
            poison_rate=0.25,
            stage_budget=40_000,
            workers=2,
            unit_retries=1,
            straggler_ticks=30_000,
            quarantine_dir=str(tmp_path / "quarantine"),
            trace_out=str(tmp_path / "trace.jsonl"),
        )
        study = Study.build(config)
        try:
            text = run_experiment("table05", study).text
            outcomes = [
                o
                for portal in study
                for o in portal.executor.outcomes
                if o.status is StageStatus.QUARANTINED
            ]
        finally:
            study.close()
        return config, tmp_path, text, outcomes

    def test_study_survives_and_reports(self, escalated):
        _, _, text, outcomes = escalated
        assert text.strip()
        assert outcomes, "no unit exhausted its retries"

    def test_quarantine_details_name_a_fault_path(self, escalated):
        """SIGKILL delivery races the unit's own budget on a loaded
        machine, so a poison unit may quarantine through either door —
        retry exhaustion or budget — but never through anything else.
        (The escalation door itself is pinned deterministically by
        TestSupervisorEscalation below.)"""
        config, _, _, outcomes = escalated
        escalation = (
            f"poison unit: killed its worker "
            f"{config.unit_retries + 1} time(s); "
            f"unit-retries={config.unit_retries} exhausted"
        )
        details = {o.detail for o in outcomes}
        assert details
        assert all(
            detail == escalation
            or detail.startswith("work budget exhausted")
            for detail in details
        )

    def test_quarantine_files_written(self, escalated):
        _, tmp_path, _, outcomes = escalated
        files = sorted((tmp_path / "quarantine").glob("*.json"))
        assert len(files) == len(outcomes)

    def test_straggler_kills_recorded(self, escalated):
        config, _, _, _ = escalated
        metrics = load_trace(config.trace_out).metrics
        assert metrics["pool.straggler_kills"]["value"] > 0
        assert metrics["pool.worker_deaths"]["value"] > 0


class _FakeConn:
    """One end of a supervisor pipe, recording what was sent."""

    def __init__(self):
        self.sent = []
        self.closed = False

    def send(self, message):
        if self.closed:
            raise OSError("send on closed pipe")
        self.sent.append(message)

    def close(self):
        self.closed = True


class _FakeProcess:
    def __init__(self, pid):
        self.pid = pid
        self.exitcode = None
        self._started = False

    def start(self):
        self._started = True

    def is_alive(self):
        return self._started and self.exitcode is None

    def die(self, exitcode=-9):
        self.exitcode = exitcode


class _FakeCtx:
    """A multiprocessing context that spawns bookkeeping stand-ins."""

    def __init__(self):
        self.spawned = []

    def Pipe(self, duplex=False):
        return _FakeConn(), _FakeConn()

    def Process(self, target=None, args=(), daemon=False):
        process = _FakeProcess(pid=50_000 + len(self.spawned))
        self.spawned.append(process)
        return process


class TestSupervisorEscalation:
    """The retry-exhaustion path, driven deterministically.

    The end-to-end poison run above can resolve each poison unit through
    either the straggler or the budget door depending on OS scheduling;
    here fake processes remove the scheduler so the kill → redispatch →
    kill → poison escalation is exercised exactly."""

    def make_supervisor(self, tmp_path, units):
        config = StudyConfig(
            scale=SCALE,
            seed=SEED,
            stage_budget=40_000,
            workers=2,
            unit_retries=1,
        )
        ctx = _FakeCtx()
        supervisor = _Supervisor(units, config, ctx, tmp_path / "shards")
        for slot in range(supervisor.slots):
            supervisor._spawn(slot)
        return supervisor

    def test_two_deaths_poison_the_unit_and_cancel_dependents(
        self, tmp_path
    ):
        screen_a = PlannedUnit("socrata", SCREEN_STAGE, "tbl-a")
        fd_a = PlannedUnit("socrata", FD_STAGE, "tbl-a")
        screen_b = PlannedUnit("socrata", SCREEN_STAGE, "tbl-b")
        supervisor = self.make_supervisor(
            tmp_path, [screen_a, fd_a, screen_b]
        )

        supervisor._dispatch_idle()
        assert supervisor.inflight[0] is screen_a
        assert supervisor.task_conns[0].sent[-1]["attempt"] == 0
        # Slot 1's home shard is empty, so it steals screen_b.
        assert supervisor.inflight[1] is screen_b
        assert supervisor.counters["pool.steals"] == 1

        # First death: the unit is redispatched to its home shard and a
        # replacement worker (with fresh pipes) takes the slot.
        supervisor.processes[0].die()
        supervisor._reap_dead()
        assert supervisor.counters["pool.worker_deaths"] == 1
        assert supervisor.counters["pool.redispatches"] == 1
        assert supervisor.attempts[screen_a.key] == 1
        assert supervisor.processes[0].is_alive()

        supervisor._dispatch_idle()
        assert supervisor.inflight[0] is screen_a
        assert supervisor.task_conns[0].sent[-1]["attempt"] == 1

        # Second death exhausts unit_retries=1: the unit is poisoned
        # and its blocked fd dependent is cancelled, not orphaned.
        supervisor.processes[0].die()
        supervisor._reap_dead()
        assert supervisor.poisoned == {screen_a.key}
        assert supervisor.cancelled == {fd_a.key}
        assert supervisor.counters["pool.poison_quarantines"] == 1
        assert supervisor.counters["pool.units_cancelled"] == 1
        assert supervisor.counters["pool.worker_deaths"] == 2

        # The surviving unit completes and the plan is fully settled.
        supervisor._on_done(
            1,
            {
                "type": "done",
                "unit": list(screen_b.key),
                "status": StageStatus.OK.name,
            },
        )
        assert not supervisor._unresolved()

    def test_repeated_fruitless_deaths_abort_instead_of_respawning(
        self, tmp_path
    ):
        screen = PlannedUnit("socrata", SCREEN_STAGE, "tbl-a")
        supervisor = self.make_supervisor(tmp_path, [screen])
        assert supervisor.slots == 1
        # Workers dying with nothing in flight cannot be a unit's
        # fault; after 3 * slots of them in a row the pool gives up.
        for _ in range(3 * supervisor.slots):
            supervisor.processes[0].die()
            supervisor._reap_dead()
        supervisor.processes[0].die()
        with pytest.raises(RuntimeError, match="no unit in"):
            supervisor._reap_dead()

    def test_poison_record_names_the_escalation(self, tmp_path):
        config = StudyConfig(
            scale=SCALE,
            seed=SEED,
            stage_budget=40_000,
            workers=2,
            unit_retries=1,
        )
        unit = PlannedUnit("socrata", SCREEN_STAGE, "tbl-a")
        completed = _poison_record(unit, config)
        assert completed.worker == "supervisor"
        assert completed.record.status == StageStatus.QUARANTINED.name
        assert completed.record.ticks == 0
        assert completed.record.detail == (
            "poison unit: killed its worker 2 time(s); "
            "unit-retries=1 exhausted"
        )


class TestResumeIntoPool:
    def test_pooled_run_replays_canonical_journal(self, tmp_path, serial_run):
        """Units checkpointed by a serial run are external to the pool:
        the resumed pooled run replays them and computes only the rest."""
        config = StudyConfig(
            scale=SCALE,
            seed=SEED,
            poison_rate=0.25,
            stage_budget=40_000,
            checkpoint_dir=str(tmp_path),
        )
        study = Study.build(config)
        try:
            first = run_experiment("table05", study).text
        finally:
            study.close()

        resumed = Study.build(
            StudyConfig(
                scale=SCALE,
                seed=SEED,
                poison_rate=0.25,
                stage_budget=40_000,
                checkpoint_dir=str(tmp_path),
                workers=3,
            )
        )
        try:
            assert run_experiment("table05", resumed).text == first
            replayed = sum(
                1
                for portal in resumed
                for o in portal.executor.outcomes
                if o.replayed
            )
            assert replayed > 0
            # Units beyond the journal still compute — in the pool —
            # and reproduce the serial fixture's text exactly.
            assert (
                run_experiment("table11", resumed).text
                == serial_run[1]["table11"]
            )
        finally:
            resumed.close()


class TestChaosSchedule:
    UNIT = None

    def unit(self):
        from repro.resilience.units import PlannedUnit

        return PlannedUnit("SG", SCREEN_STAGE, "r01")

    def config(self, **overrides):
        return StudyConfig(scale=SCALE, seed=SEED, **overrides)

    def test_zero_rate_never_kills(self):
        config = self.config(workers=2, chaos_kill_rate=0.0)
        assert _chaos_kill_tick(config, self.unit(), 0) is None

    def test_schedule_is_deterministic(self):
        config = self.config(workers=2, chaos_kill_rate=1.0)
        first = _chaos_kill_tick(config, self.unit(), 0)
        assert first == _chaos_kill_tick(config, self.unit(), 0)
        assert 1 <= first < 2 * HEARTBEAT_TICKS

    def test_final_attempt_always_spared(self):
        config = self.config(
            workers=2, chaos_kill_rate=1.0, unit_retries=2
        )
        assert _chaos_kill_tick(config, self.unit(), 1) is not None
        assert _chaos_kill_tick(config, self.unit(), 2) is None

    def test_attempts_draw_independently(self):
        config = self.config(workers=2, chaos_kill_rate=1.0, unit_retries=9)
        ticks = {_chaos_kill_tick(config, self.unit(), a) for a in range(9)}
        assert len(ticks) > 1


class TestSupervisedMeter:
    def test_heartbeat_every_n_ticks(self):
        beats = []
        meter = SupervisedMeter(
            None, metrics=MetricsRegistry(), heartbeat=beats.append,
            heartbeat_every=5,
        )
        for _ in range(12):
            meter.tick()
        assert beats == [5, 10]

    def test_coarse_ticks_do_not_skip_beats(self):
        beats = []
        meter = SupervisedMeter(
            None, heartbeat=beats.append, heartbeat_every=5
        )
        meter.tick(17)
        meter.tick(1)
        assert beats == [17]
        meter.tick(3)
        assert beats == [17, 21]


class TestWorkerTableRebuild:
    def test_spawn_fallback_matches_parent_tables(self):
        """A spawn-started worker rebuilds exactly the tables a
        fork-started worker inherits."""
        config = StudyConfig(scale=SCALE, seed=SEED)
        study = Study.build(config)
        try:
            portal = next(iter(study))
            rebuilt = _build_portal_tables(config, portal.code)
            parent = {
                (portal.code, t.resource_id): t.clean
                for t in portal.report.clean_tables
                if t.clean is not None
            }
            assert set(rebuilt) == set(parent)
            for key, table in parent.items():
                assert rebuilt[key].num_rows == table.num_rows
                assert rebuilt[key].column_names == table.column_names
        finally:
            study.close()


class TestCliAndConfig:
    def test_run_flags_parse(self):
        args = build_parser().parse_args(
            [
                "run",
                "table01",
                "--workers",
                "4",
                "--unit-retries",
                "2",
                "--chaos-kill-rate",
                "0.2",
                "--straggler-ticks",
                "50000",
                "--shard-dir",
                "/tmp/shards",
            ]
        )
        config = config_from_args(args)
        assert config.workers == 4
        assert config.unit_retries == 2
        assert config.chaos_kill_rate == 0.2
        assert config.straggler_ticks == 50_000
        assert config.shard_dir == "/tmp/shards"

    def test_defaults_stay_serial(self):
        config = config_from_args(
            build_parser().parse_args(["run", "table01"])
        )
        assert config.workers == 1
        assert config.chaos_kill_rate == 0.0
        assert config.straggler_ticks is None
        assert not config.analysis_guarded

    def test_workers_alone_arm_the_guard(self):
        assert StudyConfig(workers=2).analysis_guarded

    @pytest.mark.parametrize(
        "overrides",
        [
            {"workers": 0},
            {"unit_retries": -1},
            {"chaos_kill_rate": 1.5},
            {"chaos_kill_rate": -0.1},
            {"straggler_ticks": 0},
        ],
    )
    def test_invalid_pool_config_rejected(self, overrides):
        with pytest.raises(ValueError):
            StudyConfig(**overrides)
