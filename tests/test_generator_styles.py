"""Unit tests for repro.generator.styles (publication styles)."""

import random

import pytest

from repro.generator.base_tables import build_instance
from repro.generator.domains import DomainRegistry
from repro.generator.lineage import ColumnRole, PublicationStyle
from repro.generator.schemas import blueprint_by_topic
from repro.generator.styles import StyleKnobs, publish


@pytest.fixture(scope="module")
def registry():
    return DomainRegistry("CA", random.Random(4))


def make_instance(registry, topic="fisheries_landings", rows=400, seed=2):
    return build_instance(
        blueprint_by_topic(topic), registry, random.Random(seed),
        "ca-fam-0042", rows,
    )


def run_style(registry, style, knobs=None, **kwargs):
    inst = make_instance(registry, **kwargs)
    return publish(inst, style, random.Random(7), knobs or StyleKnobs())


class TestDenormalizedSingle:
    def test_one_dataset_one_table(self, registry):
        datasets = run_style(registry, PublicationStyle.DENORMALIZED_SINGLE)
        assert len(datasets) == 1
        assert len(datasets[0].tables) == 1

    def test_attributes_inlined(self, registry):
        (dataset,) = run_style(registry, PublicationStyle.DENORMALIZED_SINGLE)
        header = dataset.tables[0].header
        assert "species_group" in header  # the planted FD target


class TestSemiNormalized:
    def test_entity_tables_published(self, registry):
        (dataset,) = run_style(registry, PublicationStyle.SEMI_NORMALIZED)
        kinds = {t.subtable_kind for t in dataset.tables}
        assert "fact" in kinds
        assert any(k.startswith("entity:") for k in kinds)

    def test_link_columns_marked(self, registry):
        (dataset,) = run_style(registry, PublicationStyle.SEMI_NORMALIZED)
        fact = next(t for t in dataset.tables if t.subtable_kind == "fact")
        entity = next(
            t for t in dataset.tables if t.subtable_kind.startswith("entity:")
        )
        fact_links = {c.name for c in fact.lineage_columns if c.is_link}
        entity_links = {c.name for c in entity.lineage_columns if c.is_link}
        assert fact_links & entity_links

    def test_aspect_table_when_forced(self, registry):
        knobs = StyleKnobs(aspect_probability=1.0)
        (dataset,) = run_style(
            registry, PublicationStyle.SEMI_NORMALIZED, knobs=knobs
        )
        assert any(t.subtable_kind == "aspect" for t in dataset.tables)


class TestPeriodic:
    def test_same_schema_across_periods(self, registry):
        knobs = StyleKnobs(
            periodic_same_dataset_probability=1.0,
            periodic_entities_probability=0.0,
        )
        (dataset,) = run_style(registry, PublicationStyle.PERIODIC, knobs=knobs)
        facts = [t for t in dataset.tables if t.subtable_kind == "fact"]
        assert len(facts) >= 2
        headers = {tuple(t.header) for t in facts}
        assert len(headers) == 1

    def test_axis_column_dropped_and_period_set(self, registry):
        knobs = StyleKnobs(periodic_same_dataset_probability=1.0)
        (dataset,) = run_style(registry, PublicationStyle.PERIODIC, knobs=knobs)
        fact = next(t for t in dataset.tables if t.subtable_kind == "fact")
        assert "year" not in fact.header
        assert fact.period is not None

    def test_separate_datasets_variant(self, registry):
        knobs = StyleKnobs(periodic_same_dataset_probability=0.0)
        datasets = run_style(registry, PublicationStyle.PERIODIC, knobs=knobs)
        assert len(datasets) >= 2
        assert len({d.title for d in datasets}) == len(datasets)


class TestPartitioned:
    def test_partition_value_recorded(self, registry):
        (dataset,) = run_style(registry, PublicationStyle.PARTITIONED)
        assert len(dataset.tables) >= 2
        values = {t.partition_value for t in dataset.tables}
        assert len(values) == len(dataset.tables)
        fact = dataset.tables[0]
        assert "province" not in fact.header  # the partition axis


class TestSgStandard:
    def test_standard_schema(self, registry):
        knobs = StyleKnobs(
            sg_shared_hierarchy_probability=1.0,
            sg_with_level2_probability=1.0,
            sg_with_level3_probability=0.0,
        )
        (dataset,) = run_style(registry, PublicationStyle.SG_STANDARD, knobs=knobs)
        table = dataset.tables[0]
        assert table.header[:3] == ["level_1", "level_2", "year"]
        assert table.header[3] in ("value", "amount", "count", "rate")
        assert table.subtable_kind == "melted"

    def test_level2_determines_level1(self, registry):
        knobs = StyleKnobs(
            sg_shared_hierarchy_probability=1.0,
            sg_with_level2_probability=1.0,
            sg_with_level3_probability=0.0,
        )
        (dataset,) = run_style(registry, PublicationStyle.SG_STANDARD, knobs=knobs)
        table = dataset.tables[0]
        columns = dict(table.columns)
        mapping = {}
        for level2, level1 in zip(columns["level_2"], columns["level_1"]):
            assert mapping.setdefault(level2, level1) == level1

    def test_lineage_marks_level_fd(self, registry):
        knobs = StyleKnobs(sg_with_level2_probability=1.0,
                           sg_with_level3_probability=0.0)
        (dataset,) = run_style(registry, PublicationStyle.SG_STANDARD, knobs=knobs)
        level2 = dataset.tables[0].lineage_columns[1]
        assert level2.role is ColumnRole.LEVEL
        assert level2.fd_parent == "level_1"


class TestExtras:
    def test_extra_columns_stable_per_family(self, registry):
        knobs = StyleKnobs(extra_column_range=(3, 3))
        inst = make_instance(registry)
        first = publish(inst, PublicationStyle.DENORMALIZED_SINGLE,
                        random.Random(1), knobs)
        second = publish(inst, PublicationStyle.DENORMALIZED_SINGLE,
                         random.Random(99), knobs)
        extras_a = [c for c in first[0].tables[0].header
                    if c in ("status", "last_updated", "notes", "source",
                             "data_quality", "pct_of_total", "suppressed")]
        extras_b = [c for c in second[0].tables[0].header
                    if c in ("status", "last_updated", "notes", "source",
                             "data_quality", "pct_of_total", "suppressed")]
        assert extras_a == extras_b  # selection keyed by family, not rng
        assert len(extras_a) == 3
