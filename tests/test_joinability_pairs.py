"""Tests for join-search profiles, the inverted index, and pair stats."""

import pytest

from repro.dataframe import Column, Table
from repro.ingest.pipeline import IngestedTable
from repro.joinability import (
    MIN_UNIQUE_VALUES,
    analyze_joinability,
    build_profiles,
    find_joinable_pairs,
    normalize_value,
    profile_column,
)


def wrap(table: Table, dataset="d", resource=None) -> IngestedTable:
    return IngestedTable(
        portal_code="XX",
        dataset_id=dataset,
        resource_id=resource or table.name,
        name=table.name,
        url=f"https://x/{table.name}",
        raw=table,
        clean=table,
        raw_size_bytes=100,
        header_index=0,
        trailing_columns_removed=0,
        dropped_as_wide=False,
    )


def column_of(values, name="c"):
    return Column(name, values)


class TestNormalizeValue:
    def test_int_float_collapse(self):
        assert normalize_value(2020) == normalize_value(2020.0) == "2020"

    def test_real_floats_keep_decimals(self):
        assert normalize_value(2.5) == "2.5"

    def test_strings_trimmed(self):
        assert normalize_value("  Ontario ") == "Ontario"

    def test_booleans(self):
        assert normalize_value(True) == "true"


class TestProfiles:
    def test_eligibility_floor(self):
        narrow = Table("a", [column_of(list(range(5)))])
        wide = Table("b", [column_of(list(range(50)))])
        profiles, total = build_profiles([wrap(narrow), wrap(wide)])
        assert total == 2
        assert len(profiles) == 1
        assert profiles[0].num_unique == 50

    def test_floor_is_papers_ten(self):
        assert MIN_UNIQUE_VALUES == 10

    def test_profile_key_flag(self):
        table = Table("t", [column_of(list(range(30)), "k")])
        profile = profile_column(0, 0, table.column("k"))
        assert profile.is_key
        assert profile.num_rows == 30


class TestPairSearch:
    def make_tables(self):
        shared = [f"v{i}" for i in range(40)]
        t1 = Table("t1", [Column("a", shared), Column("x", list(range(40)))])
        t2 = Table("t2", [Column("b", list(shared))])
        t3 = Table("t3", [Column("c", [f"w{i}" for i in range(40)])])
        return [wrap(t, resource=f"r{i}") for i, t in enumerate((t1, t2, t3))]

    def test_perfect_overlap_found(self):
        profiles, _ = build_profiles(self.make_tables())
        pairs = find_joinable_pairs(profiles, threshold=0.9)
        matched = {
            (profiles[p.left].column_name, profiles[p.right].column_name)
            for p in pairs
        }
        assert ("a", "b") in matched
        assert all("c" not in pair for pair in matched)

    def test_jaccard_exact(self):
        left = Table("l", [Column("a", [f"v{i}" for i in range(20)])])
        right = Table("r", [Column("b", [f"v{i}" for i in range(18)])])
        profiles, _ = build_profiles([wrap(left), wrap(right)])
        pairs = find_joinable_pairs(profiles, threshold=0.5)
        assert len(pairs) == 1
        assert pairs[0].jaccard == pytest.approx(18 / 20)
        assert pairs[0].overlap == 18

    def test_threshold_excludes(self):
        left = Table("l", [Column("a", [f"v{i}" for i in range(20)])])
        right = Table("r", [Column("b", [f"v{i}" for i in range(12)])])
        profiles, _ = build_profiles([wrap(left), wrap(right)])
        assert find_joinable_pairs(profiles, threshold=0.9) == []

    def test_same_table_pairs_excluded(self):
        values = [f"v{i}" for i in range(30)]
        table = Table("t", [Column("a", values), Column("b", list(values))])
        profiles, _ = build_profiles([wrap(table)])
        assert find_joinable_pairs(profiles, threshold=0.5) == []

    def test_pairs_sorted_and_normalized(self):
        profiles, _ = build_profiles(self.make_tables())
        pairs = find_joinable_pairs(profiles, threshold=0.5)
        assert all(p.left < p.right for p in pairs)
        assert pairs == sorted(pairs, key=lambda p: (p.left, p.right))


class TestAnalysisStats:
    def test_stats_consistency(self):
        shared = [f"v{i}" for i in range(40)]
        tables = [
            wrap(Table(f"t{i}", [Column("a", list(shared))]), resource=f"r{i}")
            for i in range(4)
        ]
        analysis = analyze_joinability("XX", tables)
        stats = analysis.stats
        assert stats.total_pairs == 6  # C(4, 2)
        assert stats.joinable_tables == 4
        assert stats.frac_joinable_tables == 1.0
        assert stats.median_table_degree == 3
        assert stats.max_column_degree == 3
        assert (
            stats.key_joinable_columns + stats.nonkey_joinable_columns
            == stats.joinable_columns
        )

    def test_on_generated_corpus(self, study):
        for portal in study:
            stats = portal.joinability().stats
            assert stats.joinable_tables <= stats.total_tables
            assert stats.joinable_columns <= stats.total_columns
            assert stats.max_table_degree <= stats.total_tables - 1

    def test_lower_threshold_is_superset(self, study):
        portal = study.portal("CA")
        strict = {
            (p.left, p.right) for p in portal.joinability(0.9).pairs
        }
        loose = {
            (p.left, p.right) for p in portal.joinability(0.7).pairs
        }
        assert strict <= loose
