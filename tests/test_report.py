"""Tests for rendering helpers and letter-value statistics."""

import pytest

from repro.report import (
    letter_values,
    mib,
    percent,
    render_bar_chart,
    render_letter_values,
    render_table,
)


class TestRenderTable:
    def test_structure(self):
        text = render_table("Title", ["k", "v"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert set(lines[1]) == {"="}
        assert "k" in lines[2] and "v" in lines[2]
        assert "bb" in text

    def test_note(self):
        text = render_table("T", ["a"], [], note="scaled corpus")
        assert "note: scaled corpus" in text

    def test_float_formatting(self):
        text = render_table("T", ["a"], [[0.123456]])
        assert "0.12" in text

    def test_alignment_survives_wide_cells(self):
        text = render_table("T", ["x", "y"], [["very-long-label", 1]])
        assert "very-long-label" in text


class TestBarChart:
    def test_bars_scale(self):
        text = render_bar_chart("G", ["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 10

    def test_zero_values(self):
        text = render_bar_chart("G", ["a"], [0.0])
        assert "#" not in text.splitlines()[2]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_bar_chart("G", ["a"], [1.0, 2.0])


class TestFormatters:
    def test_percent(self):
        assert percent(0.1372, 2) == "13.72%"
        assert percent(1.0, 0) == "100%"

    def test_mib(self):
        assert mib(1024 * 1024) == "1.00 MiB"


class TestLetterValues:
    def test_empty(self):
        summary = letter_values([])
        assert summary.count == 0
        assert summary.boxes == ()

    def test_median_and_fourths(self):
        values = list(range(1, 101))
        summary = letter_values(values)
        assert summary.median == pytest.approx(50.5)
        low, high = summary.fourths
        assert low == pytest.approx(25.75)
        assert high == pytest.approx(75.25)
        assert summary.minimum == 1 and summary.maximum == 100

    def test_boxes_nested(self):
        values = list(range(1000))
        summary = letter_values(values, max_letters=4)
        assert len(summary.boxes) == 4
        for outer, inner in zip(summary.boxes, summary.boxes[1:]):
            assert inner[1] <= outer[1]
            assert inner[2] >= outer[2]

    def test_small_sample_stops_early(self):
        summary = letter_values([1.0, 2.0, 3.0], max_letters=4)
        assert len(summary.boxes) == 0

    def test_render(self):
        summary = letter_values(list(range(100)))
        text = render_letter_values("XX", summary)
        assert text.startswith("XX: n=100")
        assert "F-box" in text


class TestLetterValueProperties:
    def test_letter_values_random_distributions(self):
        """Letter values must nest and bracket the median for any input."""
        import random

        from repro.report import letter_values

        rng = random.Random(7)
        for _ in range(50):
            n = rng.randint(1, 500)
            values = [rng.lognormvariate(0, 2) for _ in range(n)]
            summary = letter_values(values)
            assert summary.minimum <= summary.median <= summary.maximum
            previous = (summary.minimum, summary.maximum)
            for _, low, high in reversed(summary.boxes):
                assert previous[0] <= low <= summary.median
                assert summary.median <= high <= previous[1]
                previous = (low, high)


class TestMinHashErrorBound:
    def test_estimate_within_statistical_error(self):
        """With 256 permutations the MinHash estimate should sit within
        ~4 standard errors of true Jaccard for a range of overlaps."""
        from repro.joinability.minhash import MinHasher, estimate_jaccard

        hasher = MinHasher.create(num_perm=256, seed=3)
        base = [f"v{i}" for i in range(200)]
        for kept in (40, 100, 160, 200):
            other = base[:kept] + [f"w{i}" for i in range(200 - kept)]
            true_jaccard = kept / (400 - kept)
            estimate = estimate_jaccard(
                hasher.signature(base), hasher.signature(other)
            )
            standard_error = (
                true_jaccard * (1 - true_jaccard) / 256
            ) ** 0.5 or 0.01
            assert abs(estimate - true_jaccard) <= max(4 * standard_error, 0.06)
