"""Unit tests for repro.keys.candidates."""

from repro.dataframe import Column, Table
from repro.keys import (
    NO_KEY,
    find_min_key,
    key_size_distribution,
    single_key_columns,
)


class TestSingleKeys:
    def test_unique_column_is_key(self, cities_table):
        assert single_key_columns(cities_table) == ("id",)
        report = find_min_key(cities_table)
        assert report.min_key_size == 1
        assert report.has_single_key

    def test_nulls_disqualify(self):
        table = Table("t", [Column("a", [1, 2, None])])
        assert single_key_columns(table) == ()

    def test_multiple_single_keys(self):
        table = Table("t", [Column("a", [1, 2]), Column("b", ["x", "y"])])
        assert single_key_columns(table) == ("a", "b")


class TestCompositeKeys:
    def test_two_column_key(self, fish_table):
        # species x year is the grain: no single column is a key, but a
        # pair is (the reported example must actually be unique).
        report = find_min_key(fish_table)
        assert report.min_key_size == 2
        columns = [fish_table.column(n) for n in report.example_key]
        tuples = {
            tuple(c[i] for c in columns)
            for i in range(fish_table.num_rows)
        }
        assert len(tuples) == fish_table.num_rows

    def test_three_column_key(self):
        rows = [
            (a, b, c)
            for a in (1, 2)
            for b in (1, 2)
            for c in (1, 2)
        ]
        table = Table.from_rows("t", ["a", "b", "c"], rows)
        report = find_min_key(table)
        assert report.min_key_size == 3

    def test_no_key_with_duplicate_rows(self):
        table = Table.from_rows("t", ["a", "b"], [(1, 1), (1, 1), (2, 2)])
        report = find_min_key(table)
        assert report.min_key_size == NO_KEY
        assert not report.has_any_key

    def test_composite_counts_nulls_as_values(self):
        # (None, 1) and (None, 2) are distinct tuples, so {a, b} keys
        # the table even though column a is all-null.
        table = Table.from_rows(
            "t", ["a", "b"], [(None, 1), (None, 2), (1, 1)]
        )
        report = find_min_key(table)
        assert report.min_key_size == 2

    def test_empty_table_has_no_key(self):
        assert find_min_key(Table.empty("t", ["a"])).min_key_size == NO_KEY

    def test_pruning_skips_low_cardinality_combos(self):
        # 3 x 2 distinct values cannot key 10 rows; the search must
        # reject the combo without scanning and still find no key.
        rows = [(i % 3, i % 2) for i in range(10)]
        table = Table.from_rows("t", ["a", "b"], rows)
        assert find_min_key(table, max_size=2).min_key_size == NO_KEY

    def test_max_size_respected(self):
        rows = [
            (a, b, c)
            for a in (1, 2)
            for b in (1, 2)
            for c in (1, 2)
        ]
        table = Table.from_rows("t", ["a", "b", "c"], rows)
        assert find_min_key(table, max_size=2).min_key_size == NO_KEY


class TestDistribution:
    def test_counts_sum(self, cities_table, fish_table):
        dist = key_size_distribution("XX", [cities_table, fish_table])
        assert dist.total_tables == 2
        assert sum(dist.counts.values()) == 2
        assert dist.counts[1] == 1
        assert dist.counts[2] == 1

    def test_fraction(self, cities_table):
        dist = key_size_distribution("XX", [cities_table])
        assert dist.fraction(1) == 1.0
        assert dist.fraction(NO_KEY) == 0.0

    def test_empty_portfolio(self):
        dist = key_size_distribution("XX", [])
        assert dist.total_tables == 0
        assert dist.fraction(1) == 0.0


class TestOnGeneratedCorpus:
    def test_minimum_key_reports_consistent(self, study):
        portal = study.portal("US")
        for table in portal.filtered_tables()[:25]:
            report = find_min_key(table)
            if report.min_key_size == 1:
                assert report.single_keys
            elif report.has_any_key:
                assert len(report.example_key) == report.min_key_size
                # Verify the reported key really is unique.
                seen = set()
                columns = [table.column(n) for n in report.example_key]
                for i in range(table.num_rows):
                    key = tuple(c[i] for c in columns)
                    assert key not in seen
                    seen.add(key)
