"""Tests for the serving robustness ladder (repro.serve.service).

Each class exercises one rung against the shared study: admission
(rate limit, bounded queue, shed), per-request deadlines (degraded
partials), the per-family circuit breaker, and the
stale-while-revalidate cache fallback.
"""

import dataclasses

import pytest

from repro.resilience.breaker import BreakerConfig
from repro.resilience.clock import SimulatedClock
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    Decision,
)
from repro.serve.api import Request
from repro.serve.cache import FRESH, MISS, STALE, CacheConfig, ResponseCache
from repro.serve.service import (
    OUTCOME_DEGRADED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_SHED,
    LakeService,
    ServiceConfig,
)


def make_service(study, *, fault_hook=None, **overrides):
    config = ServiceConfig(
        breaker=BreakerConfig(
            failure_threshold=0.5, window=8, min_calls=4, reset_timeout=30.0
        ),
        **overrides,
    )
    return LakeService(study, config=config, fault_hook=fault_hook)


def search_request(client="c1", q="fisheries"):
    return Request("/lake_search", {"q": q, "limit": "5"}, {}, client)


@pytest.fixture(scope="module")
def service(study):
    """A shared service for tests that don't mutate breaker state."""
    return make_service(study)


class TestAdmissionController:
    def make(self, **overrides):
        defaults = dict(
            concurrency=2, queue_depth=2, client_rate=10.0, client_burst=2.0
        )
        defaults.update(overrides)
        clock = SimulatedClock()
        return AdmissionController(AdmissionConfig(**defaults), clock), clock

    def test_slots_then_queue_then_shed(self):
        controller, _ = self.make()
        decisions = [
            controller.decide(f"client-{i}").decision for i in range(5)
        ]
        assert decisions == [
            Decision.ADMITTED,
            Decision.ADMITTED,
            Decision.QUEUED,
            Decision.QUEUED,
            Decision.SHED,
        ]
        assert controller.within_bounds()

    def test_shed_carries_retry_after(self):
        controller, _ = self.make(queue_depth=0, concurrency=1)
        controller.decide("a")
        shed = controller.decide("b")
        assert shed.decision is Decision.SHED
        assert shed.rejected
        assert shed.retry_after == 1.0

    def test_client_over_rate_gets_429_without_losing_tokens(self):
        controller, clock = self.make()
        assert controller.decide("hog").decision is Decision.ADMITTED
        controller.finish()
        assert controller.decide("hog").decision is Decision.ADMITTED
        controller.finish()
        # Burst of 2 exhausted; the next probe is rejected but must not
        # consume future capacity.
        rejected = controller.decide("hog")
        assert rejected.decision is Decision.RATE_LIMITED
        assert rejected.retry_after > 0
        clock.sleep(rejected.retry_after)
        assert controller.decide("hog").decision is Decision.ADMITTED

    def test_rate_limit_is_per_client(self):
        controller, _ = self.make()
        controller.decide("hog")
        controller.finish()
        controller.decide("hog")
        controller.finish()
        assert controller.decide("hog").decision is Decision.RATE_LIMITED
        assert controller.decide("polite").decision is Decision.ADMITTED

    def test_promote_and_finish_guards(self):
        controller, _ = self.make(concurrency=1, queue_depth=1)
        with pytest.raises(RuntimeError):
            controller.promote()
        with pytest.raises(RuntimeError):
            controller.finish()
        controller.decide("a")
        controller.decide("b")  # queued
        with pytest.raises(RuntimeError):
            controller.promote()  # no free slot
        controller.finish()
        controller.promote()
        assert controller.in_flight == 1 and controller.queued == 0


class TestResponseCache:
    def make(self, **overrides):
        defaults = dict(fresh_ttl=10.0, stale_ttl=100.0, max_entries=2)
        defaults.update(overrides)
        clock = SimulatedClock()
        return ResponseCache(CacheConfig(**defaults), clock), clock

    def test_miss_fresh_stale_expired_lifecycle(self):
        cache, clock = self.make()
        assert cache.lookup("k") == (None, MISS)
        cache.store("k", {"n": 1}, 'W/"a"')
        entry, state = cache.lookup("k")
        assert state == FRESH and entry.result == {"n": 1}
        clock.sleep(50.0)
        entry, state = cache.lookup("k")
        assert state == STALE and entry.etag == 'W/"a"'
        clock.sleep(100.0)
        assert cache.lookup("k") == (None, MISS)
        assert len(cache) == 0

    def test_lru_eviction_is_deterministic(self):
        cache, _ = self.make()
        cache.store("a", 1, "ea")
        cache.store("b", 2, "eb")
        cache.lookup("a")  # refresh a's recency
        cache.store("c", 3, "ec")
        assert cache.lookup("b") == (None, MISS)
        assert cache.lookup("a")[1] == FRESH
        assert cache.lookup("c")[1] == FRESH

    def test_store_overwrites(self):
        cache, _ = self.make()
        cache.store("k", 1, "e1")
        cache.store("k", 2, "e2")
        entry, _ = cache.lookup("k")
        assert entry.result == 2 and entry.etag == "e2"


class TestServiceRequestPath:
    def test_healthz_reports_portals(self, service):
        response = service.handle(Request("/healthz", {}, {}, "probe"))
        assert response.status == 200
        assert response.outcome == OUTCOME_OK
        assert response.body["status"] == "ok"
        assert set(response.body["breakers"]) == {"search", "join", "union"}
        assert response.body["packages"] > 0

    def test_statz_exposes_slo_and_endpoints(self, service):
        service.handle(Request("/api/3/action/package_list", {}, {}, "c1"))
        response = service.handle(Request("/statz", {}, {}, "probe"))
        assert response.status == 200
        assert "in_flight" in response.body["admission"]
        assert response.body["slo"]["verdict"] in ("OK", "BURNING", "EXHAUSTED")
        endpoints = response.body["endpoints"]
        assert endpoints["package_list"]["requests"] == 1
        assert endpoints["package_list"]["ops"]["count"] == 1

    def test_statz_raw_escape_hatch(self, service):
        response = service.handle(
            Request("/statz", {"raw": "1"}, {}, "probe")
        )
        assert response.status == 200
        assert "serve.requests" in response.body["metrics"]
        assert "slo" not in response.body

    def test_unknown_endpoint_404_is_ok_outcome(self, service):
        response = service.handle(Request("/nope", {}, {}, "probe"))
        assert response.status == 404
        assert response.outcome == OUTCOME_OK
        assert response.body["success"] is False

    def test_unknown_package_404_regression(self, service):
        response = service.handle(
            Request(
                "/api/3/action/package_show", {"id": "SG:ghost"}, {}, "probe"
            )
        )
        assert response.status == 404
        assert response.outcome == OUTCOME_OK
        assert response.body["error"]["__type"] == "Not Found Error"
        assert "ghost" in response.body["error"]["message"]

    def test_unknown_resource_404_regression(self, service):
        response = service.handle(
            Request(
                "/join_suggest",
                {"portal": "US", "resource": "ghost"},
                {},
                "probe",
            )
        )
        assert response.status == 404
        assert "ghost" in response.body["error"]["message"]

    def test_search_round_trip_with_etag_304(self, service):
        first = service.handle(search_request("etag-client"))
        assert first.status == 200
        assert first.body["success"] is True
        assert first.body["degraded"] is False
        etag = first.etag
        assert etag
        second = service.handle(
            Request(
                "/lake_search",
                {"q": "fisheries", "limit": "5"},
                {"If-None-Match": etag},
                "etag-client",
            )
        )
        assert second.status == 304
        assert second.body is None
        assert second.to_bytes() == b""

    def test_repeat_query_served_from_fresh_cache(self, study):
        service = make_service(study)
        service.handle(search_request("cache-client"))
        repeat = service.handle(search_request("cache-client"))
        assert repeat.ops == 1  # a lookup, not a recomputation
        assert service.metrics.value("serve.cache.hit") >= 1

    def test_rate_limited_client_sheds_with_retry_after(self, study):
        service = make_service(
            study,
            admission=AdmissionConfig(client_rate=5.0, client_burst=2.0),
        )
        outcomes = [
            service.handle(
                Request("/healthz", {}, {}, "hammer")
            ).outcome
            for _ in range(4)
        ]
        assert outcomes[:2] == [OUTCOME_OK, OUTCOME_OK]
        assert OUTCOME_SHED in outcomes[2:]
        shed = service.handle(Request("/healthz", {}, {}, "hammer"))
        assert shed.status == 429
        assert shed.retry_after > 0
        assert shed.body["error"]["__type"] == "Rate Limit Error"


class TestDeadlineDegradation:
    def test_tight_deadline_marks_degraded_partial(self, study):
        service = make_service(study, deadline_ops=5)
        response = service.handle(
            Request(
                "/api/3/action/package_list", {"limit": "100"}, {}, "c1"
            )
        )
        assert response.status == 200
        assert response.outcome == OUTCOME_DEGRADED
        assert response.body["degraded"] is True
        # The partial page is a correct prefix of the full listing.
        assert len(response.body["result"]["packages"]) == 5
        assert service.metrics.value("serve.outcome.degraded") == 1

    def test_degraded_results_are_not_cached(self, study):
        # A one-op deadline exhausts on any multi-posting query; the
        # partial answer must not poison the cache for later clients.
        service = make_service(study, deadline_ops=1)
        response = service.handle(
            search_request("c1", q="waste collection")
        )
        assert response.outcome == OUTCOME_DEGRADED
        assert len(service.cache) == 0

    def test_unlimited_deadline_never_degrades(self, study):
        service = make_service(study, deadline_ops=None)
        response = service.handle(
            Request(
                "/api/3/action/package_list", {"limit": "1000"}, {}, "c1"
            )
        )
        assert response.outcome == OUTCOME_OK
        assert response.ops > 1


class FailFamilies:
    """A fault hook failing every call of the chosen families."""

    def __init__(self, families):
        self.families = families
        self.calls = 0

    def __call__(self, request, family):
        if family in self.families:
            self.calls += 1
            raise RuntimeError(f"injected {family} fault #{self.calls}")


class TestBreakerAndStaleFallback:
    def test_backend_failures_open_breaker_then_shed(self, study):
        hook = FailFamilies({"search"})
        service = make_service(study, fault_hook=hook)
        # First failures surface as 500s (no cached fallback exists).
        responses = [
            service.handle(search_request(f"c{i}")) for i in range(6)
        ]
        assert responses[0].status == 500
        assert responses[0].outcome == OUTCOME_ERROR
        assert service.breakers["search"].state.value == "open"
        # Once open, requests are refused without invoking the backend.
        calls_before = hook.calls
        refused = service.handle(search_request("c9"))
        assert refused.status == 503
        assert refused.outcome == OUTCOME_SHED
        assert refused.retry_after == 30.0
        assert hook.calls == calls_before

    def test_open_breaker_serves_stale_cached_answer(self, study):
        service = make_service(study)
        # Populate the cache while healthy, then let it go stale.
        healthy = service.handle(search_request("c1"))
        assert healthy.body["degraded"] is False
        service.clock.sleep(service.config.cache.fresh_ttl + 1.0)
        # Break the backend and trip the breaker on a *different* key.
        service._fault_hook = FailFamilies({"search"})
        for i in range(6):
            service.handle(search_request(f"c{i}", q="tax filings"))
        assert service.breakers["search"].state.value == "open"
        stale = service.handle(search_request("c9"))
        assert stale.status == 200
        assert stale.outcome == OUTCOME_DEGRADED
        assert stale.body["stale"] is True
        assert stale.body["degraded"] is True
        assert stale.body["result"] == healthy.body["result"]
        assert service.metrics.value("serve.stale_served") >= 1

    def test_backend_failure_with_stale_entry_degrades_not_errors(
        self, study
    ):
        service = make_service(study)
        service.handle(search_request("c1"))
        service.clock.sleep(service.config.cache.fresh_ttl + 1.0)
        service._fault_hook = FailFamilies({"search"})
        response = service.handle(search_request("c2"))
        assert response.status == 200
        assert response.outcome == OUTCOME_DEGRADED
        assert response.body["stale"] is True

    def test_breaker_recovers_after_reset_timeout(self, study):
        hook = FailFamilies({"search"})
        service = make_service(study, fault_hook=hook)
        for i in range(6):
            service.handle(search_request(f"c{i}"))
        assert service.breakers["search"].state.value == "open"
        service._fault_hook = None  # backend healed
        service.clock.sleep(service.config.breaker.reset_timeout + 1.0)
        probe = service.handle(search_request("c9", q="energy"))
        assert probe.status == 200
        assert service.breakers["search"].state.value == "closed"

    def test_client_errors_do_not_trip_breaker(self, study):
        service = make_service(study)
        for i in range(10):
            service.handle(
                Request(
                    "/join_suggest",
                    {"portal": "US", "resource": f"ghost-{i}"},
                    {},
                    f"c{i}",
                )
            )
        assert service.breakers["join"].state.value == "closed"

    def test_families_fail_independently(self, study):
        service = make_service(study, fault_hook=FailFamilies({"join"}))
        search = service.handle(search_request("c1"))
        assert search.status == 200
        assert service.breakers["search"].state.value == "closed"


class TestOutcomeAccounting:
    def test_every_request_terminates_in_one_outcome(self, study):
        service = make_service(study, deadline_ops=5)
        requests = [
            Request("/healthz", {}, {}, "a"),
            Request("/nope", {}, {}, "a"),
            Request("/api/3/action/package_list", {"limit": "50"}, {}, "b"),
            Request("/api/3/action/package_show", {"id": "XX:d"}, {}, "b"),
            search_request("c"),
        ]
        for request in requests:
            response = service.handle(request)
            assert response.outcome in (
                OUTCOME_OK,
                OUTCOME_DEGRADED,
                OUTCOME_SHED,
                OUTCOME_ERROR,
            )
        assert service.metrics.value("serve.requests") == len(requests)
        total = sum(
            service.metrics.value(f"serve.outcome.{o}")
            for o in ("ok", "degraded", "shed", "error")
        )
        assert total == len(requests)

    def test_config_is_frozen(self, service):
        with pytest.raises(dataclasses.FrozenInstanceError):
            service.config.deadline_ops = 1
