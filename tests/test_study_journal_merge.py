"""Shard-journal reconciliation (StudyJournal.merge and friends).

The worker pool persists per-worker shard journals and merges them into
one canonical study journal after the fleet drains.  These tests pin
the merge contract: deterministic shard order, duplicate deduplication,
hard failure on conflicting duplicates, and torn-line tolerance.
"""

import dataclasses
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience.study_journal import (
    MergeConflict,
    StageRecord,
    StudyJournal,
)


def record(stage="screen", table_id="t1", *, status="OK", ticks=10, **kw):
    return StageRecord(
        stage=stage,
        table_id=table_id,
        status=status,
        ticks=ticks,
        budget=kw.pop("budget", 1000),
        detail=kw.pop("detail", ""),
        payload=kw.pop("payload", None),
    )


def write_shard(path, lines):
    text = "\n".join(
        line if isinstance(line, str) else json.dumps(line, sort_keys=True)
        for line in lines
    )
    path.write_text(text + "\n", encoding="utf-8")


def bare(rec):
    return dataclasses.asdict(rec)


def envelope(rec, worker="w0"):
    """A pool-style shard line wrapping the record."""
    return {
        "unit": ["SG", rec.stage, rec.table_id],
        "worker": worker,
        "record": dataclasses.asdict(rec),
        "metrics": {},
    }


class TestMerge:
    def test_interleaved_shards_union(self, tmp_path):
        """Disjoint units scattered across shards all land in the journal."""
        write_shard(
            tmp_path / "shard-w0.jsonl",
            [bare(record(table_id="t1")), bare(record("fd", "t3"))],
        )
        write_shard(
            tmp_path / "shard-w1.jsonl",
            [bare(record(table_id="t2")), bare(record("fd", "t1"))],
        )
        journal = StudyJournal.merge(
            tmp_path / "study.jsonl",
            [tmp_path / "shard-w1.jsonl", tmp_path / "shard-w0.jsonl"],
        )
        assert len(journal) == 4
        assert journal.get("screen", "t1") == record(table_id="t1")
        assert journal.get("fd", "t1") == record("fd", "t1")
        journal.close()

    def test_merge_order_is_path_sorted(self, tmp_path):
        """The canonical journal's line order ignores worker finish order."""

        def run(order):
            out = tmp_path / f"study-{order[0].name}.jsonl"
            StudyJournal.merge(out, order).close()
            return out.read_text(encoding="utf-8")

        write_shard(tmp_path / "shard-w0.jsonl", [bare(record(table_id="a"))])
        write_shard(tmp_path / "shard-w1.jsonl", [bare(record(table_id="b"))])
        forward = run([tmp_path / "shard-w0.jsonl", tmp_path / "shard-w1.jsonl"])
        reverse = run([tmp_path / "shard-w1.jsonl", tmp_path / "shard-w0.jsonl"])
        assert forward == reverse

    def test_identical_duplicates_dedupe(self, tmp_path):
        """A re-dispatched unit persisted by two workers merges silently."""
        twin = record(table_id="t1", ticks=42)
        write_shard(tmp_path / "shard-w0.jsonl", [bare(twin)])
        write_shard(tmp_path / "shard-w1.jsonl", [envelope(twin, "w1")])
        metrics = MetricsRegistry()
        journal = StudyJournal.merge(
            tmp_path / "study.jsonl",
            sorted(tmp_path.glob("shard-*.jsonl")),
            metrics=metrics,
        )
        assert len(journal) == 1
        assert metrics.snapshot()["journal.merge_duplicates"]["value"] == 1
        journal.close()

    def test_conflicting_duplicates_raise(self, tmp_path):
        write_shard(
            tmp_path / "shard-w0.jsonl", [bare(record(table_id="t1", ticks=42))]
        )
        write_shard(
            tmp_path / "shard-w1.jsonl", [bare(record(table_id="t1", ticks=43))]
        )
        with pytest.raises(MergeConflict) as excinfo:
            StudyJournal.merge(
                tmp_path / "study.jsonl",
                sorted(tmp_path.glob("shard-*.jsonl")),
            )
        assert "disagrees" in str(excinfo.value)

    def test_conflict_with_existing_canonical_journal(self, tmp_path):
        canonical = tmp_path / "study.jsonl"
        with StudyJournal(canonical) as journal:
            journal.record(record(table_id="t1", ticks=10))
        write_shard(
            tmp_path / "shard-w0.jsonl", [bare(record(table_id="t1", ticks=99))]
        )
        with pytest.raises(MergeConflict):
            StudyJournal.merge(canonical, [tmp_path / "shard-w0.jsonl"])

    def test_existing_canonical_records_kept_not_rewritten(self, tmp_path):
        canonical = tmp_path / "study.jsonl"
        with StudyJournal(canonical) as journal:
            journal.record(record(table_id="t1"))
        before = canonical.read_text(encoding="utf-8")
        write_shard(
            tmp_path / "shard-w0.jsonl",
            [bare(record(table_id="t1")), bare(record(table_id="t2"))],
        )
        merged = StudyJournal.merge(canonical, [tmp_path / "shard-w0.jsonl"])
        merged.close()
        after = canonical.read_text(encoding="utf-8")
        assert after.startswith(before)
        assert len(after.splitlines()) == 2


class TestShardTolerance:
    def test_torn_lines_skipped_and_counted(self, tmp_path):
        good = record(table_id="t1")
        write_shard(
            tmp_path / "shard-w0.jsonl",
            [bare(good), '{"stage": "fd", "table_id": "t2", "sta'],
        )
        metrics = MetricsRegistry()
        journal = StudyJournal.merge(
            tmp_path / "study.jsonl",
            [tmp_path / "shard-w0.jsonl"],
            metrics=metrics,
        )
        assert len(journal) == 1
        assert metrics.snapshot()["journal.torn_lines"]["value"] == 1
        journal.close()

    def test_header_lines_ignored(self, tmp_path):
        write_shard(
            tmp_path / "shard-w0.jsonl",
            [
                {"shard": "w0", "fingerprint": {"seed": 7}},
                bare(record(table_id="t1")),
            ],
        )
        journal = StudyJournal.merge(
            tmp_path / "study.jsonl", [tmp_path / "shard-w0.jsonl"]
        )
        assert len(journal) == 1
        journal.close()

    def test_missing_shards_are_not_an_error(self, tmp_path):
        journal = StudyJournal.merge(
            tmp_path / "study.jsonl", [tmp_path / "never-written.jsonl"]
        )
        assert len(journal) == 0
        journal.close()

    def test_merged_journal_replays_through_constructor(self, tmp_path):
        """The merged file is an ordinary study journal: reloading it
        yields exactly the merged records."""
        write_shard(
            tmp_path / "shard-w0.jsonl",
            [envelope(record(table_id="t1")), envelope(record("fd", "t1"))],
        )
        StudyJournal.merge(
            tmp_path / "study.jsonl", [tmp_path / "shard-w0.jsonl"]
        ).close()
        reloaded = StudyJournal(tmp_path / "study.jsonl")
        assert len(reloaded) == 2
        assert reloaded.get("fd", "t1") == record("fd", "t1")
        reloaded.close()
