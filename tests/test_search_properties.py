"""Property-based cross-checks for key discovery and join search."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, Table
from repro.ingest.pipeline import IngestedTable
from repro.joinability.index import build_profiles
from repro.joinability.pairs import find_joinable_pairs
from repro.keys import NO_KEY, find_min_key


@st.composite
def key_tables(draw):
    n_cols = draw(st.integers(1, 4))
    n_rows = draw(st.integers(1, 18))
    columns = [
        Column(
            f"c{i}",
            draw(
                st.lists(
                    st.one_of(st.integers(0, 5), st.none()),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            ),
        )
        for i in range(n_cols)
    ]
    return Table("t", columns)


def brute_force_min_key(table: Table, max_size: int = 3) -> int:
    """Reference implementation: try every column combination."""
    names = list(table.column_names)
    # Size 1 uses the stricter single-key rule (no nulls).
    if any(table.column(n).is_key for n in names):
        return 1
    for size in range(2, max_size + 1):
        for combo in combinations(names, size):
            seen = set()
            cols = [table.column(n) for n in combo]
            ok = True
            for i in range(table.num_rows):
                key = tuple(c[i] for c in cols)
                if key in seen:
                    ok = False
                    break
                seen.add(key)
            if ok:
                return size
    return NO_KEY


@given(key_tables())
@settings(max_examples=100, deadline=None)
def test_min_key_matches_brute_force(table):
    assert find_min_key(table).min_key_size == brute_force_min_key(table)


@st.composite
def column_sets(draw):
    n_columns = draw(st.integers(2, 5))
    pool = [f"v{i}" for i in range(25)]
    tables = []
    for i in range(n_columns):
        values = draw(
            st.lists(st.sampled_from(pool), min_size=12, max_size=40)
        )
        table = Table(f"t{i}", [Column("c", values)])
        tables.append(
            IngestedTable(
                portal_code="XX",
                dataset_id=f"d{i}",
                resource_id=f"r{i}",
                name=f"t{i}",
                url=f"u{i}",
                raw=table,
                clean=table,
                raw_size_bytes=1,
                header_index=0,
                trailing_columns_removed=0,
                dropped_as_wide=False,
            )
        )
    return tables


@given(column_sets(), st.sampled_from([0.5, 0.7, 0.9]))
@settings(max_examples=60, deadline=None)
def test_join_search_matches_brute_force(tables, threshold):
    profiles, _ = build_profiles(tables, min_unique=2)
    found = {
        (p.left, p.right): p.jaccard
        for p in find_joinable_pairs(profiles, threshold=threshold)
    }
    # Brute force over every cross-table profile pair.
    expected = {}
    for a, b in combinations(profiles, 2):
        if a.table_index == b.table_index:
            continue
        union = a.values | b.values
        jaccard = len(a.values & b.values) / len(union) if union else 0.0
        if jaccard >= threshold:
            expected[(a.column_id, b.column_id)] = jaccard
    assert set(found) == set(expected)
    for key, jaccard in expected.items():
        assert abs(found[key] - jaccard) < 1e-12


@given(column_sets())
@settings(max_examples=40, deadline=None)
def test_pair_jaccard_symmetric_and_bounded(tables):
    profiles, _ = build_profiles(tables, min_unique=2)
    for pair in find_joinable_pairs(profiles, threshold=0.0):
        assert 0.0 < pair.jaccard <= 1.0
        assert pair.overlap <= min(
            profiles[pair.left].num_unique, profiles[pair.right].num_unique
        )
