"""Unit tests for repro.generator.corruption."""

import random

import pytest

from repro.dataframe import read_csv
from repro.generator.corruption import (
    CorruptionKnobs,
    corrupt_and_serialize,
    masquerade_payload,
)
from repro.generator.denormalize import TableDraft
from repro.generator.lineage import ColumnLineage, ColumnRole
from repro.portal.magic import detect_mime


def draft(n_rows=50):
    return TableDraft(
        name="sample",
        columns=[
            ("id", list(range(1, n_rows + 1))),
            ("city", [f"City {i % 7}" for i in range(n_rows)]),
            ("amount", [round(i * 1.5, 2) for i in range(n_rows)]),
        ],
        lineage_columns=[
            ColumnLineage("id", "id.fam.t", ColumnRole.ID),
            ColumnLineage("city", "geo.city.CA", ColumnRole.GEO),
            ColumnLineage("amount", "measure.fam.amount", ColumnRole.MEASURE),
        ],
        subtable_kind="fact",
    )


CLEAN = CorruptionKnobs(
    column_null_probability=0.0,
    full_null_probability=0.0,
    trailing_empty_probability=0.0,
    preamble_probability=0.0,
    unnamed_header_probability=0.0,
    wide_malformed_probability=0.0,
    transpose_probability=0.0,
)


class TestCleanSerialization:
    def test_roundtrips(self):
        outcome = corrupt_and_serialize(draft(), CLEAN, random.Random(1), "Org")
        table = read_csv(outcome.payload.decode("utf-8"))
        assert table.num_rows == 50
        assert table.column_names == ("id", "city", "amount")
        assert table.column("id").values[:3] == [1, 2, 3]

    def test_floats_keep_decimal_point(self):
        outcome = corrupt_and_serialize(draft(), CLEAN, random.Random(1), "Org")
        text = outcome.payload.decode("utf-8")
        assert "3.0" in text  # 2*1.5 serialized with its decimal point

    def test_sniffs_as_csv(self):
        outcome = corrupt_and_serialize(draft(), CLEAN, random.Random(1), "Org")
        assert detect_mime(outcome.payload) == "text/csv"


class TestNullInjection:
    def test_unprotected_columns_get_nulls(self):
        import dataclasses

        knobs = dataclasses.replace(
            CLEAN, column_null_probability=1.0, heavy_null_probability=0.0
        )
        outcome = corrupt_and_serialize(draft(200), knobs, random.Random(2), "Org")
        table = read_csv(outcome.payload.decode("utf-8"))
        assert table.column("amount").null_count > 0

    def test_protected_id_column_damped(self):
        import dataclasses

        knobs = dataclasses.replace(CLEAN, column_null_probability=1.0)
        counts = []
        for seed in range(20):
            outcome = corrupt_and_serialize(
                draft(50), knobs, random.Random(seed), "Org"
            )
            table = read_csv(outcome.payload.decode("utf-8"))
            counts.append(table.column("id").null_count)
        # 0.15 damping: most runs leave the id column untouched.
        assert sum(1 for c in counts if c == 0) >= 10

    def test_full_null_column(self):
        import dataclasses

        knobs = dataclasses.replace(CLEAN, full_null_probability=1.0)
        outcome = corrupt_and_serialize(draft(), knobs, random.Random(3), "Org")
        table = read_csv(outcome.payload.decode("utf-8"))
        assert table.column("amount").is_entirely_null


class TestStructuralDefects:
    def test_trailing_empty_columns(self):
        import dataclasses

        knobs = dataclasses.replace(CLEAN, trailing_empty_probability=1.0)
        outcome = corrupt_and_serialize(draft(), knobs, random.Random(4), "Org")
        table = read_csv(outcome.payload.decode("utf-8"))
        assert table.num_columns > 3
        assert table.column(table.num_columns - 1).is_entirely_null

    def test_preamble_rows(self):
        import dataclasses

        knobs = dataclasses.replace(CLEAN, preamble_probability=1.0)
        outcome = corrupt_and_serialize(draft(), knobs, random.Random(5), "Org")
        assert outcome.preamble_rows >= 1
        first_line = outcome.payload.decode("utf-8").splitlines()[0]
        assert first_line.startswith("Table:")

    def test_wide_malformed_exceeds_cutoff(self):
        import dataclasses

        knobs = dataclasses.replace(CLEAN, wide_malformed_probability=1.0)
        outcome = corrupt_and_serialize(draft(), knobs, random.Random(6), "Org")
        assert outcome.wide_malformed
        header = outcome.payload.decode("utf-8").splitlines()[0]
        assert header.count(",") + 1 > 100

    def test_transpose(self):
        import dataclasses

        knobs = dataclasses.replace(CLEAN, transpose_probability=1.0)
        outcome = corrupt_and_serialize(draft(10), knobs, random.Random(7), "Org")
        assert outcome.transposed
        lines = outcome.payload.decode("utf-8").splitlines()
        assert len(lines) == 3  # columns became rows

    def test_unnamed_header_cell(self):
        import dataclasses

        knobs = dataclasses.replace(CLEAN, unnamed_header_probability=1.0)
        outcome = corrupt_and_serialize(draft(), knobs, random.Random(8), "Org")
        assert outcome.header_has_unnamed


class TestMasquerade:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_csv(self, seed):
        payload = masquerade_payload(random.Random(seed))
        assert detect_mime(payload) != "text/csv"


class TestGroupConsistentAttributeNulls:
    def test_attribute_nulls_respect_fd_groups(self):
        """Null injection on an FD-attribute column must hit whole
        parent-value groups, never individual cells (which would break
        the planted FD under nulls-as-values semantics)."""
        import dataclasses

        from repro.dataframe import read_csv

        cities = [f"City{i % 6}" for i in range(60)]
        provinces = [f"P{i % 6}" for i in range(60)]
        fd_draft = TableDraft(
            name="t",
            columns=[("city", cities), ("province", provinces)],
            lineage_columns=[
                ColumnLineage("city", "geo.city.CA", ColumnRole.GEO),
                ColumnLineage(
                    "province", "geo.region.CA", ColumnRole.ATTRIBUTE,
                    fd_parent="city",
                ),
            ],
            subtable_kind="fact",
        )
        knobs = dataclasses.replace(
            CLEAN, column_null_probability=1.0, heavy_null_probability=0.0
        )
        saw_nulls = False
        for seed in range(12):
            outcome = corrupt_and_serialize(
                fd_draft, knobs, random.Random(seed), "Org"
            )
            table = read_csv(outcome.payload.decode("utf-8"))
            city = table.column("city").values
            province = table.column("province").values
            if any(v is None for v in province):
                saw_nulls = True
            mapping = {}
            for c, p in zip(city, province):
                if c is None:
                    # A nulled *parent* cell legitimately breaks the
                    # strict FD (real missing keys do too); the
                    # guarantee is only about attribute-side nulls.
                    continue
                assert mapping.setdefault(c, p) == p, (
                    "attribute nulls broke the city -> province FD"
                )
        assert saw_nulls
