"""Unit tests for repro.dataframe.ops (joins, unions, group-by)."""

import pytest

from repro.dataframe import (
    Column,
    SchemaError,
    Table,
    distinct_count,
    group_by,
    inner_join,
    join_output_size,
    union_all,
)


@pytest.fixture()
def facts():
    return Table(
        "facts",
        [
            Column("city", ["Waterloo", "Toronto", "Waterloo", "Ottawa"]),
            Column("value", [1, 2, 3, 4]),
        ],
    )


@pytest.fixture()
def dims():
    return Table(
        "dims",
        [
            Column("city", ["Waterloo", "Toronto", "Guelph"]),
            Column("province", ["ON", "ON", "ON"]),
        ],
    )


class TestInnerJoin:
    def test_basic_join(self, facts, dims):
        joined = inner_join(facts, dims, "city", "city")
        assert joined.num_rows == 3  # Ottawa has no match
        assert joined.column_names == ("city", "value", "province")

    def test_join_multiplicity(self):
        left = Table("l", [Column("k", [1, 1, 2])])
        right = Table("r", [Column("k", [1, 1, 1, 2])])
        joined = inner_join(left, right, "k", "k")
        assert joined.num_rows == 2 * 3 + 1 * 1

    def test_nulls_never_match(self):
        left = Table("l", [Column("k", [None, 1])])
        right = Table("r", [Column("k", [None, 1])])
        assert inner_join(left, right, "k", "k").num_rows == 1

    def test_name_clash_gets_prefixed(self):
        left = Table("l", [Column("k", [1]), Column("v", [10])])
        right = Table("r", [Column("k", [1]), Column("v", [20])])
        joined = inner_join(left, right, "k", "k")
        assert joined.column_names == ("k", "v", "r.v")
        assert joined.row(0) == (1, 10, 20)

    def test_empty_result(self, facts):
        other = Table("o", [Column("city", ["Nowhere"])])
        assert inner_join(facts, other, "city", "city").num_rows == 0


class TestJoinOutputSize:
    def test_matches_materialized_join(self, facts, dims):
        expected = inner_join(facts, dims, "city", "city").num_rows
        assert join_output_size(facts, dims, "city", "city") == expected

    def test_quadratic_case(self):
        left = Table("l", [Column("k", ["a"] * 10)])
        right = Table("r", [Column("k", ["a"] * 7)])
        assert join_output_size(left, right, "k", "k") == 70

    def test_null_keys_ignored(self):
        left = Table("l", [Column("k", [None, None, 1])])
        right = Table("r", [Column("k", [None, 1])])
        assert join_output_size(left, right, "k", "k") == 1


class TestUnionAll:
    def test_concatenates(self, dims):
        doubled = union_all(dims, dims)
        assert doubled.num_rows == 6
        assert doubled.column_names == dims.column_names

    def test_requires_identical_names(self, facts, dims):
        with pytest.raises(SchemaError):
            union_all(facts, dims)


class TestGroupBy:
    def test_aggregates(self, facts):
        grouped = group_by(
            facts,
            ["city"],
            {
                "total": ("value", "sum"),
                "n": ("value", "count"),
                "biggest": ("value", "max"),
            },
        )
        by_city = {row[0]: row[1:] for row in grouped.iter_rows()}
        assert by_city["Waterloo"] == (4, 2, 3)
        assert by_city["Ottawa"] == (4, 1, 4)

    def test_groups_in_first_seen_order(self, facts):
        grouped = group_by(facts, ["city"], {"n": ("value", "count")})
        assert [r[0] for r in grouped.iter_rows()] == [
            "Waterloo", "Toronto", "Ottawa",
        ]

    def test_mean_ignores_nulls_and_text(self):
        table = Table("t", [Column("g", [1, 1, 1]), Column("v", [2, None, "x"])])
        grouped = group_by(table, ["g"], {"m": ("v", "mean")})
        assert grouped.row(0) == (1, 2.0)

    def test_distinct_count_aggregate(self):
        table = Table("t", [Column("g", [1, 1]), Column("v", ["a", "a"])])
        grouped = group_by(table, ["g"], {"d": ("v", "distinct_count")})
        assert grouped.row(0) == (1, 1)

    def test_unknown_aggregate_rejected(self, facts):
        with pytest.raises(ValueError, match="unknown aggregate"):
            group_by(facts, ["city"], {"x": ("value", "median")})


class TestDistinctCount:
    def test_counts_tuples(self, facts):
        assert distinct_count(facts, ["city"]) == 3
        assert distinct_count(facts, ["city", "value"]) == 4

    def test_nulls_count_as_values(self):
        table = Table("t", [Column("a", [None, None, 1])])
        assert distinct_count(table, ["a"]) == 2
