"""Unit tests for repro.dataframe.csvio."""

import pytest

from repro.dataframe import (
    Column,
    EmptyTableError,
    ParseError,
    Table,
    decode_bytes,
    read_csv,
    read_raw_rows,
    rows_to_table,
    write_csv,
)


class TestDecodeBytes:
    def test_utf8(self):
        assert decode_bytes("héllo".encode("utf-8")) == "héllo"

    def test_utf8_bom_stripped(self):
        assert decode_bytes(b"\xef\xbb\xbfa,b") == "a,b"

    def test_latin1_fallback(self):
        assert decode_bytes(b"caf\xe9") == "café"


class TestReadRawRows:
    def test_basic(self):
        rows = read_raw_rows("a,b\n1,2\n")
        assert rows == [["a", "b"], ["1", "2"]]

    def test_quoted_fields(self):
        rows = read_raw_rows('a,b\n"x,y",2\n')
        assert rows[1] == ["x,y", "2"]

    def test_blank_lines_dropped(self):
        rows = read_raw_rows("a\n\n\n1\n")
        assert rows == [["a"], ["1"]]

    def test_max_rows(self):
        rows = read_raw_rows("a\n1\n2\n3\n", max_rows=2)
        assert len(rows) == 2


class TestRowsToTable:
    def test_header_at_offset(self):
        rows = [["Title"], ["a", "b"], ["1", "2"]]
        table = rows_to_table("t", rows, header_index=1)
        assert table.column_names == ("a", "b")
        assert table.row(0) == (1, 2)

    def test_width_override(self):
        rows = [["a", "b"], ["1", "2", "junk"], ["3"]]
        table = rows_to_table("t", rows, header_index=0, num_columns=2)
        assert table.num_columns == 2
        assert table.row(1) == (3, None)

    def test_blank_header_cells_named(self):
        table = rows_to_table("t", [["a", "", "c"], ["1", "2", "3"]], 0)
        assert table.column_names == ("a", "column_2", "c")

    def test_errors(self):
        with pytest.raises(EmptyTableError):
            rows_to_table("t", [], 0)
        with pytest.raises(ParseError):
            rows_to_table("t", [["a"]], 5)
        with pytest.raises(EmptyTableError):
            rows_to_table("t", [[]], 0)


class TestReadWriteRoundTrip:
    def test_read_csv_types(self):
        table = read_csv("name,count,rate\nWaterloo,5,0.25\nGuelph,,0.5\n")
        assert table.column("count").values == [5, None]
        assert table.column("rate").values == [0.25, 0.5]

    def test_roundtrip_preserves_values(self):
        table = Table(
            "t",
            [
                Column("i", [1, None, 3]),
                Column("f", [1.5, 2.5, None]),
                Column("b", [True, False, None]),
                Column("s", ["a,b", 'q"uote', ""]),
            ],
        )
        back = read_csv(write_csv(table))
        assert back.column("i").values == [1, None, 3]
        assert back.column("f").values == [1.5, 2.5, None]
        assert back.column("b").values == [True, False, None]
        # "" round-trips to None: empty cells are nulls by convention.
        assert back.column("s").values == ["a,b", 'q"uote', None]

    def test_write_csv_header(self):
        table = Table("t", [Column("a", [1])])
        assert write_csv(table).splitlines()[0] == "a"

    def test_empty_input_raises(self):
        with pytest.raises(EmptyTableError):
            read_csv("")
