"""Unit/integration tests for repro.generator.portal_gen."""

import pytest

from repro.generator import generate_portal
from repro.generator.lineage import PublicationStyle
from repro.generator.profiles import (
    ALL_PROFILES,
    CA_PROFILE,
    SG_PROFILE,
    US_PROFILE,
)
from repro.portal import MetadataKind


@pytest.fixture(scope="module")
def ca():
    return generate_portal(CA_PROFILE, seed=5, scale=0.25)


class TestGeneration:
    def test_table_target_reached(self, ca):
        target = round(CA_PROFILE.table_target * 0.25)
        assert len(ca.lineage) >= target

    def test_lineage_covers_stored_csv_tables(self, ca):
        from repro.portal.magic import detect_mime

        for dataset in ca.portal.datasets:
            for resource in dataset.csv_resources:
                blob = ca.store.get(resource.url)
                assert blob is not None
                if blob.ok and detect_mime(blob.content) == "text/csv":
                    # Masquerading payloads (declared CSV, actually
                    # HTML/PDF) are deliberately lineage-free.
                    lineage = ca.lineage.maybe_get(resource.resource_id)
                    assert lineage is not None
                    assert lineage.dataset_id == dataset.dataset_id

    def test_undownloadable_resources_recorded_as_failures(self, ca):
        failures = 0
        for dataset in ca.portal.datasets:
            for resource in dataset.csv_resources:
                blob = ca.store.get(resource.url)
                if blob is not None and not blob.ok:
                    failures += 1
        # CA's downloadable rate is 0.41: the majority must fail.
        assert failures > len(ca.lineage)

    def test_plain_datasets_have_no_csv(self, ca):
        plain = [
            d for d in ca.portal.datasets if d.dataset_id.startswith("ca-doc-")
        ]
        assert plain, "CA profile should generate document-only datasets"
        assert all(not d.csv_resources for d in plain)

    def test_metadata_kinds_follow_mix(self, ca):
        kinds = {d.metadata_kind for d in ca.portal.datasets}
        assert MetadataKind.LACKING in kinds

    def test_publication_dates_in_window(self, ca):
        years = {d.published.year for d in ca.portal.datasets}
        assert years <= set(range(2017, 2023))

    def test_determinism(self):
        a = generate_portal(SG_PROFILE, seed=11, scale=0.2)
        b = generate_portal(SG_PROFILE, seed=11, scale=0.2)
        assert [d.dataset_id for d in a.portal.datasets] == [
            d.dataset_id for d in b.portal.datasets
        ]
        urls = [
            r.url for d in a.portal.datasets for r in d.resources
        ]
        for url in urls[:50]:
            blob_a, blob_b = a.store.get(url), b.store.get(url)
            assert (blob_a is None) == (blob_b is None)
            if blob_a is not None and blob_a.ok:
                assert blob_a.content == b.store.get(url).content

    def test_different_seeds_differ(self):
        a = generate_portal(SG_PROFILE, seed=1, scale=0.2)
        b = generate_portal(SG_PROFILE, seed=2, scale=0.2)
        a_bytes = a.store.total_bytes()
        assert a_bytes != b.store.total_bytes()


class TestDuplicates:
    def test_us_duplicates_recorded(self):
        us = generate_portal(US_PROFILE, seed=5, scale=0.3)
        duplicates = [
            record for record in us.lineage if record.duplicate_of is not None
        ]
        assert duplicates
        for record in duplicates:
            assert record.style is PublicationStyle.DUPLICATE
            original = us.lineage.maybe_get(record.duplicate_of)
            assert original is not None
            # Same bytes published under a different dataset.
            assert record.dataset_id != original.dataset_id

    def test_sg_has_no_duplicates(self):
        sg = generate_portal(SG_PROFILE, seed=5, scale=0.3)
        assert all(r.duplicate_of is None for r in sg.lineage)


class TestProfiles:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.code)
    def test_style_weights_valid(self, profile):
        assert profile.style_weights
        assert all(w > 0 for w in profile.style_weights.values())

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.code)
    def test_metadata_mix_sums_to_one(self, profile):
        assert sum(profile.metadata_mix) == pytest.approx(1.0)

    def test_sg_is_cleanest(self):
        sg = SG_PROFILE.corruption
        ca = CA_PROFILE.corruption
        assert sg.column_null_probability < ca.column_null_probability
        assert sg.wide_malformed_probability == 0.0
