"""Tests for the span tracer, trace writer/reader, and validation."""

import json

import pytest

from repro.obs import Observer, maybe_span
from repro.obs.stats import load_trace, validate_spans
from repro.obs.trace import TraceWriter, Tracer, read_trace


class TestTracer:
    def test_parenting_and_sequence_numbers(self):
        tracer = Tracer()
        root = tracer.start("study", kind="study")
        child = tracer.start("portal", kind="portal")
        assert child.parent_id == root.span_id
        tracer.finish(child)
        tracer.finish(root)
        assert root.seq_open < child.seq_open
        assert child.seq_open < child.seq_close < root.seq_close
        assert tracer.spans_finished == 2

    def test_ops_roll_up_to_parent(self):
        tracer = Tracer()
        root = tracer.start("root")
        child = tracer.start("child")
        grandchild = tracer.start("grandchild")
        tracer.finish(grandchild, ops=5)
        tracer.finish(child, ops=2)
        tracer.finish(root)
        assert grandchild.total_ops == 5
        assert child.self_ops == 2 and child.total_ops == 7
        assert root.self_ops == 0 and root.total_ops == 7

    def test_finish_non_innermost_raises(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(ValueError):
            tracer.finish(outer)

    def test_context_manager_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.open_spans == []
        assert tracer.spans_finished == 1


class TestTraceFile:
    def _write_small_trace(self, path):
        writer = TraceWriter(path, header={"version": 1, "seed": 2})
        tracer = Tracer(writer)
        with tracer.span("study", kind="study"):
            with tracer.span("portal", kind="portal", portal="SG") as span:
                span.add_ops(3)
        writer.write({"type": "footer", "spans": tracer.spans_finished})
        writer.close()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_small_trace(path)
        records = list(read_trace(path))
        assert records[0]["type"] == "header"
        assert records[0]["seed"] == 2
        spans = [r for r in records if r["type"] == "span"]
        # Children finish (and are written) before their parents.
        assert [s["name"] for s in spans] == ["portal", "study"]
        assert spans[0]["ops"] == 3
        assert records[-1] == {"type": "footer", "spans": 2}

    def test_no_wall_ms_by_default(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_small_trace(path)
        assert not any("wall_ms" in r for r in read_trace(path))

    def test_wall_clock_attaches_wall_ms(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        tracer = Tracer(writer, wall_clock=True)
        with tracer.span("timed"):
            pass
        writer.close()
        spans = [r for r in read_trace(path) if r["type"] == "span"]
        assert all("wall_ms" in s for s in spans)

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_small_trace(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "id": 99, "nam')
        records = list(read_trace(path))
        assert all(r.get("id") != 99 for r in records)
        assert sum(1 for r in records if r["type"] == "span") == 2

    def test_load_trace_flags_footer_mismatch(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_small_trace(path)
        lines = path.read_text().splitlines()
        # Drop one span record but keep the footer's original count.
        del lines[1]
        path.write_text("\n".join(lines) + "\n")
        trace = load_trace(path)
        assert not trace.valid
        assert any("footer" in p for p in trace.problems)


class TestDegenerateTraces:
    """Empty and torn-only inputs must report, not crash (ISSUE 5)."""

    def test_empty_file(self, tmp_path):
        from repro.obs.stats import render_stats, stats_json

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        trace = load_trace(path)
        assert trace.valid
        assert trace.spans == [] and trace.torn == 0
        report = render_stats(trace)
        assert "no spans" in report
        doc = stats_json(trace)
        assert doc["span_count"] == 0
        assert doc["total_ops"] == 0

    def test_torn_only_file(self, tmp_path):
        from repro.obs.stats import render_stats

        path = tmp_path / "torn.jsonl"
        path.write_text('{"type": "header", "se\n{"type": "span", "id"\n')
        trace = load_trace(path)
        assert trace.spans == []
        assert trace.torn == 2
        report = render_stats(trace)
        assert "no spans" in report
        assert "2 torn line(s)" in report

    def test_non_dict_lines_count_as_torn(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('[1, 2, 3]\n"just a string"\n')
        trace = load_trace(path)
        assert trace.spans == []
        assert trace.torn == 2

    def test_orphan_span_is_a_problem_not_a_crash(self, tmp_path):
        from repro.obs.stats import render_stats

        path = tmp_path / "orphan.jsonl"
        span = {
            "type": "span",
            "id": 7,
            "parent": 99,
            "open": 1,
            "close": 2,
            "name": "stage",
        }
        path.write_text(json.dumps(span) + "\n")
        trace = load_trace(path)
        assert not trace.valid
        assert any("missing" in p and "parent" in p for p in trace.problems)
        assert "BROKEN" in render_stats(trace)

    def test_orphan_span_through_validate_spans(self):
        spans = [{"id": 7, "parent": 99, "open": 1, "close": 2}]
        problems = validate_spans(spans)
        assert any("missing" in p and "parent 99" in p for p in problems)

    def test_torn_tail_keeps_complete_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TestTraceFile()._write_small_trace(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "id": 99, "nam')
        trace = load_trace(path)
        assert len(trace.spans) == 2
        assert trace.torn == 1


class TestValidation:
    def test_clean_tree_passes(self):
        spans = [
            {"id": 2, "parent": 1, "open": 2, "close": 3},
            {"id": 1, "parent": None, "open": 1, "close": 4},
        ]
        assert validate_spans(spans) == []

    def test_detects_broken_nesting(self):
        spans = [
            {"id": 1, "parent": None, "open": 1, "close": 3},
            {"id": 2, "parent": 1, "open": 2, "close": 4},
        ]
        assert any("not nested" in p for p in validate_spans(spans))

    def test_detects_sibling_overlap(self):
        spans = [
            {"id": 1, "parent": None, "open": 1, "close": 6},
            {"id": 2, "parent": 1, "open": 2, "close": 4},
            {"id": 3, "parent": 1, "open": 3, "close": 5},
        ]
        problems = validate_spans(spans)
        assert any("overlap" in p for p in problems)

    def test_detects_duplicate_ids(self):
        spans = [
            {"id": 1, "parent": None, "open": 1, "close": 2},
            {"id": 1, "parent": None, "open": 3, "close": 4},
        ]
        assert any("duplicate span id" in p for p in validate_spans(spans))


class TestObserver:
    def test_maybe_span_null_context(self):
        with maybe_span(None, "anything") as span:
            assert span is None

    def test_metrics_only_observer_writes_nothing(self, tmp_path):
        obs = Observer()
        with obs.span("root"):
            obs.metrics.inc("hits")
        obs.close()
        assert list(tmp_path.iterdir()) == []

    def test_close_finishes_dangling_spans_and_writes_metrics(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs = Observer(path, meta={"seed": 5})
        obs.tracer.start("study", kind="study")
        obs.tracer.start("portal", kind="portal")
        obs.metrics.inc("crawl.retries", 2)
        obs.close()
        records = list(read_trace(path))
        kinds = [r["type"] for r in records]
        assert kinds[0] == "header" and kinds[-1] == "footer"
        assert kinds.count("span") == 2
        metric = next(r for r in records if r["type"] == "metric")
        assert metric["name"] == "crawl.retries"
        assert metric["value"] == 2

    def test_header_carries_meta(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs = Observer(path, meta={"seed": 5, "scale": 0.1})
        obs.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["seed"] == 5
        assert header["scale"] == 0.1
        assert header["wall_clock"] is False
