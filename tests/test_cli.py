"""Tests for the ogdp-repro command line interface."""

import pytest

from repro.experiments import clear_cache
from repro.experiments.cli import build_parser, main


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table01"])
        assert args.experiment == "table01"
        assert args.scale == 1.0
        assert args.seed == 7

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "figure08", "--scale", "0.2", "--seed", "3"]
        )
        assert args.scale == 0.2
        assert args.seed == 3


class TestMain:
    def test_list_prints_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table01" in out and "figure08" in out

    def test_run_single(self, capsys):
        code = main(["run", "table03", "--scale", "0.08", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_unknown_experiment(self, capsys):
        code = main(["run", "tableXX", "--scale", "0.08", "--seed", "2"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err
