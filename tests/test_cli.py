"""Tests for the ogdp-repro command line interface."""

import pytest

from repro.core.study import _build_client
from repro.experiments import clear_cache
from repro.experiments.cli import build_parser, config_from_args, main
from repro.portal import BlobStore, HttpClient
from repro.resilience import ResilientHttpClient


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table01"])
        assert args.experiment == "table01"
        assert args.scale == 1.0
        assert args.seed == 7

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "figure08", "--scale", "0.2", "--seed", "3"]
        )
        assert args.scale == 0.2
        assert args.seed == 3

    def test_resilience_defaults_are_seed_behavior(self):
        config = config_from_args(
            build_parser().parse_args(["run", "table01"])
        )
        assert config.max_retries == 0
        assert config.checkpoint_dir is None
        assert config.resume is True
        # max_retries=0 must use the bare transport — the paper's
        # single-shot crawl, bit-for-bit.
        client = _build_client(HttpClient(BlobStore()), config)
        assert isinstance(client, HttpClient)
        assert not isinstance(client, ResilientHttpClient)

    def test_max_retries_flag_reaches_retry_policy(self):
        config = config_from_args(
            build_parser().parse_args(
                ["run", "table01", "--max-retries", "2"]
            )
        )
        assert config.max_retries == 2
        client = _build_client(HttpClient(BlobStore()), config)
        assert isinstance(client, ResilientHttpClient)
        assert client.policy.max_retries == 2
        assert client.policy.max_attempts == 3

    def test_no_resume_and_checkpoint_dir_flags(self, tmp_path):
        config = config_from_args(
            build_parser().parse_args(
                [
                    "run", "table01",
                    "--checkpoint-dir", str(tmp_path),
                    "--no-resume",
                ]
            )
        )
        assert config.checkpoint_dir == str(tmp_path)
        assert config.resume is False

    def test_guard_defaults_are_seed_behavior(self):
        config = config_from_args(
            build_parser().parse_args(["run", "table01"])
        )
        assert config.stage_budget is None
        assert config.quarantine_dir is None
        assert config.poison_rate == 0.0
        assert not config.analysis_guarded

    def test_guard_flags_reach_config(self, tmp_path):
        config = config_from_args(
            build_parser().parse_args(
                [
                    "run", "table01",
                    "--stage-budget", "40000",
                    "--quarantine-dir", str(tmp_path),
                    "--poison-rate", "0.25",
                ]
            )
        )
        assert config.stage_budget == 40000
        assert config.quarantine_dir == str(tmp_path)
        assert config.poison_rate == 0.25
        assert config.analysis_guarded

    def test_obs_defaults_are_seed_behavior(self):
        config = config_from_args(
            build_parser().parse_args(["run", "table01"])
        )
        assert config.trace_out is None
        assert config.wall_clock is False

    def test_trace_flags_reach_config(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        config = config_from_args(
            build_parser().parse_args(
                ["run", "table01", "--trace-out", trace, "--wall-clock"]
            )
        )
        assert config.trace_out == trace
        assert config.wall_clock is True

    def test_stats_command_parses(self):
        args = build_parser().parse_args(
            ["stats", "trace.jsonl", "--json", "--top", "5"]
        )
        assert args.command == "stats"
        assert args.trace == "trace.jsonl"
        assert args.as_json is True
        assert args.top == 5

    @pytest.mark.parametrize(
        "flags",
        [
            ["--stage-budget", "0"],
            ["--stage-budget", "-5"],
            ["--poison-rate", "1.5"],
            ["--poison-rate", "-0.1"],
        ],
    )
    def test_bad_guard_values_rejected(self, flags):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table01", *flags])

    def test_fidelity_command_parses(self):
        args = build_parser().parse_args(
            ["fidelity", "--scale", "0.2", "--json", "--out", "f.json"]
        )
        assert args.command == "fidelity"
        assert args.scale == 0.2
        assert args.as_json is True
        assert args.out == "f.json"

    def test_diff_command_parses(self):
        args = build_parser().parse_args(
            ["diff", "runs/a", "runs/b", "--rel-tol", "0.05"]
        )
        assert args.command == "diff"
        assert args.run_a == "runs/a"
        assert args.run_b == "runs/b"
        assert args.rel_tol == 0.05

    def test_bench_report_command_parses(self):
        args = build_parser().parse_args(
            ["bench-report", "--root", "/tmp", "--fail-on-regression"]
        )
        assert args.command == "bench-report"
        assert args.root == "/tmp"
        assert args.fail_on_regression is True

    def test_serve_command_parses(self):
        args = build_parser().parse_args(
            ["serve", "--scale", "0.25", "--port", "8323"]
        )
        assert args.command == "serve"
        assert args.scale == 0.25
        assert args.port == 8323
        # host/port default to None; _run_serve falls back to the
        # httpd module defaults.
        assert args.host is None

    def test_serve_rejects_negative_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--port", "-1"])

    def test_loadtest_command_parses(self, tmp_path):
        args = build_parser().parse_args(
            [
                "loadtest",
                "--mix", "smoke",
                "--load-seed", "11",
                "--report", str(tmp_path / "load.json"),
                "--bench-root", str(tmp_path),
                "--json",
            ]
        )
        assert args.command == "loadtest"
        assert args.mix == "smoke"
        assert args.load_seed == 11
        assert args.as_json is True
        assert args.bench_root == str(tmp_path)

    def test_join_index_defaults_to_lsh(self):
        config = config_from_args(
            build_parser().parse_args(["run", "table01"])
        )
        assert config.join_index == "lsh"
        assert config.join_index_dir is None

    def test_join_index_flags_reach_config(self, tmp_path):
        config = config_from_args(
            build_parser().parse_args(
                [
                    "run", "table06",
                    "--join-index", "allpairs",
                    "--join-index-dir", str(tmp_path),
                ]
            )
        )
        assert config.join_index == "allpairs"
        assert config.join_index_dir == str(tmp_path)

    def test_build_index_command_parses(self, tmp_path):
        args = build_parser().parse_args(
            [
                "build-index",
                "--out", str(tmp_path),
                "--scale", "0.08",
                "--seed", "2",
                "--thresholds", "0.9,0.7",
                "--workers", "4",
                "--chaos-kill-rate", "0.2",
                "--verify",
                "--json",
            ]
        )
        assert args.command == "build-index"
        assert args.out == str(tmp_path)
        assert args.thresholds == "0.9,0.7"
        assert args.workers == 4
        assert args.chaos_kill_rate == 0.2
        assert args.verify is True


class TestMain:
    def test_list_prints_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table01" in out and "figure08" in out

    def test_run_single(self, capsys):
        code = main(["run", "table03", "--scale", "0.08", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_unknown_experiment(self, capsys):
        code = main(["run", "tableXX", "--scale", "0.08", "--seed", "2"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_with_retries_and_checkpoints(self, capsys, tmp_path):
        code = main(
            [
                "run", "table03",
                "--scale", "0.08",
                "--seed", "2",
                "--max-retries", "1",
                "--checkpoint-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "Table 3" in capsys.readouterr().out
        # One crawl journal per portal was written.
        journals = sorted(p.name for p in tmp_path.glob("crawl-*.jsonl"))
        assert journals  # e.g. crawl-CA.jsonl, crawl-SG.jsonl, ...

    def test_guarded_run_logs_outcome_summary(self, capsys, tmp_path):
        code = main(
            [
                "run", "table05",
                "--scale", "0.08",
                "--seed", "2",
                "--stage-budget", "40000",
                "--poison-rate", "0.25",
                "--quarantine-dir", str(tmp_path / "quarantine"),
                "--checkpoint-dir", str(tmp_path / "checkpoints"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        # Diagnostics are structured log lines on stderr, not stdout.
        assert "guarded-outcomes" in captured.err
        assert "ticks=" in captured.err
        assert "guarded-outcomes" not in captured.out
        # Study journals were written next to the crawl journals.
        assert sorted(
            p.name for p in (tmp_path / "checkpoints").glob("study-*.jsonl")
        )

    def test_quiet_suppresses_outcome_summary(self, capsys, tmp_path):
        code = main(
            [
                "-q",
                "run", "table05",
                "--scale", "0.08",
                "--seed", "2",
                "--stage-budget", "40000",
                "--quarantine-dir", str(tmp_path / "quarantine"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "guarded-outcomes" not in captured.err
        assert "Table 5" in captured.out

    def test_unguarded_run_logs_no_summary(self, capsys):
        code = main(["run", "table05", "--scale", "0.08", "--seed", "2"])
        assert code == 0
        assert "guarded-outcomes" not in capsys.readouterr().err

    def test_stats_missing_trace_file(self, capsys, tmp_path):
        code = main(["stats", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "trace-missing" in capsys.readouterr().err

    def test_stats_empty_trace_reports_no_spans(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 0
        assert "no spans" in capsys.readouterr().out


class TestBuildIndex:
    def test_build_verify_and_bench_record(self, capsys, tmp_path):
        import json

        out = tmp_path / "idx"
        code = main(
            [
                "-q",
                "build-index",
                "--out", str(out),
                "--scale", "0.08",
                "--seed", "2",
                "--thresholds", "0.9,0.7",
                "--verify",
                "--json",
                "--bench-root", str(tmp_path),
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mismatches"] == 0
        assert doc["verified"] is True
        # The candidate drop the index exists for.
        assert doc["lsh_candidates"] * 5 <= doc["exact_candidates"]
        # 4 portals x 2 thresholds, all on disk.
        assert len(doc["indexes"]) == 8
        assert len(sorted(out.glob("join-*.json"))) == 8
        record = json.loads(
            (tmp_path / "BENCH_join.json").read_text()
        )[-1]
        assert record["join_candidates"] == doc["lsh_candidates"]
        assert record["total_ops"] > 0

    def test_bad_thresholds_rejected(self, capsys, tmp_path):
        code = main(
            [
                "-q",
                "build-index",
                "--out", str(tmp_path),
                "--thresholds", "0.9,nope",
            ]
        )
        assert code == 2

    def test_loadtest_serves_built_index(self, capsys, tmp_path):
        out = tmp_path / "idx"
        assert (
            main(
                [
                    "-q", "build-index",
                    "--out", str(out),
                    "--scale", "0.08", "--seed", "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        clear_cache()
        code = main(
            [
                "loadtest",
                "--scale", "0.08",
                "--seed", "2",
                "--mix", "smoke",
                "--join-index-dir", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        # The lake loaded every portal's pair set from disk.
        assert "lake-join-index" in captured.err
        assert "status=hit" in captured.err
        assert "SLO" in captured.out or "outcome" in captured.out


class TestDriftCommands:
    """End-to-end fidelity/diff/bench-report through main()."""

    RUN_FLAGS = [
        "--scale", "0.08", "--seed", "2", "--stage-budget", "40000",
    ]

    def _trace_run(self, tmp_path, name, extra=()):
        run_dir = tmp_path / name
        run_dir.mkdir()
        code = main(
            [
                "-q", "run", "table05", *self.RUN_FLAGS, *extra,
                "--quarantine-dir", str(tmp_path / f"q-{name}"),
                "--trace-out", str(run_dir / "trace.jsonl"),
            ]
        )
        assert code == 0
        clear_cache()
        return run_dir

    def test_equal_seed_runs_diff_empty(self, capsys, tmp_path):
        run_a = self._trace_run(tmp_path, "a")
        run_b = self._trace_run(tmp_path, "b")
        code = main(["diff", str(run_a), str(run_b)])
        assert code == 0
        assert "no drift" in capsys.readouterr().out

    def test_poisoned_run_drifts_nonzero(self, capsys, tmp_path):
        run_a = self._trace_run(tmp_path, "a")
        run_p = self._trace_run(
            tmp_path, "p", extra=["--poison-rate", "0.05"]
        )
        out_file = tmp_path / "diff.json"
        code = main(
            ["diff", str(run_a), str(run_p), "--out", str(out_file)]
        )
        assert code == 1
        assert "outcome transitions" in capsys.readouterr().out
        import json

        doc = json.loads(out_file.read_text())
        assert doc["drift_count"] > 0
        assert doc["outcome_transitions"]

    def test_diff_unreadable_run_exits_2(self, capsys, tmp_path):
        code = main(["diff", str(tmp_path / "x"), str(tmp_path / "y")])
        assert code == 2
        assert "diff-unreadable" in capsys.readouterr().err

    def test_bench_report_empty_root(self, capsys, tmp_path):
        code = main(["bench-report", "--root", str(tmp_path)])
        assert code == 0
        assert "no bench history" in capsys.readouterr().out

    def test_loadtest_unknown_mix(self, capsys):
        code = main(["loadtest", "--mix", "nope"])
        assert code == 2
        assert "unknown-mix" in capsys.readouterr().err

    def test_loadtest_end_to_end(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "load.json"
        code = main(
            [
                "-q", "loadtest",
                "--scale", "0.18", "--seed", "3",
                "--mix", "smoke",
                "--report", str(report_path),
                "--bench-root", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lost=0" in out
        doc = json.loads(report_path.read_text())
        assert doc["requests"]["lost"] == 0
        assert all(doc["invariants"].values())
        history = json.loads(
            (tmp_path / "BENCH_serve.json").read_text()
        )
        assert len(history) == 1
        assert history[0]["experiment"] == "serve"
        assert history[0]["clients"] == doc["harness"]["clients"]

    def test_bench_report_gates_regression(self, capsys, tmp_path):
        import json

        records = [
            {
                "experiment": "table05",
                "scale": 1.0,
                "seed": 7,
                "seconds": 1.0,
                "ops": {},
                "total_ops": ops,
            }
            for ops in (100_000, 101_000, 99_000, 200_000)
        ]
        (tmp_path / "BENCH_table05.json").write_text(json.dumps(records))
        assert main(["bench-report", "--root", str(tmp_path)]) == 0
        code = main(
            ["bench-report", "--root", str(tmp_path), "--fail-on-regression"]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out


class TestProfileCommands:
    """The profiler's CLI surface: flags, report, and diff gate."""

    def _write_profile(self, path, frames):
        from repro.obs.profile import Profiler, write_profile

        prof = Profiler()
        prof.absorb(frames)
        write_profile(path, prof)
        return str(path)

    def test_profile_defaults_are_seed_behavior(self):
        config = config_from_args(
            build_parser().parse_args(["run", "table01"])
        )
        assert config.profile_out is None
        assert config.profile_sample == 1_000

    def test_profile_flags_reach_config(self, tmp_path):
        out = str(tmp_path / "profile.json")
        config = config_from_args(
            build_parser().parse_args(
                [
                    "run",
                    "table01",
                    "--profile-out",
                    out,
                    "--profile-sample",
                    "50",
                ]
            )
        )
        assert config.profile_out == out
        assert config.profile_sample == 50

    def test_profile_report_command_parses(self, tmp_path):
        args = build_parser().parse_args(
            [
                "profile-report",
                "profile.json",
                "--json",
                "--top",
                "3",
                "--collapsed",
                str(tmp_path / "c.txt"),
            ]
        )
        assert args.command == "profile-report"
        assert args.source == "profile.json"
        assert args.as_json is True
        assert args.top == 3

    def test_profile_diff_command_parses(self):
        args = build_parser().parse_args(
            [
                "profile-diff",
                "a.json",
                "b.json",
                "--threshold",
                "0.5",
                "--min-ticks",
                "10",
            ]
        )
        assert args.command == "profile-diff"
        assert args.threshold == 0.5
        assert args.min_ticks == 10

    def test_run_writes_profile_artifact(self, capsys, tmp_path):
        import json

        out = tmp_path / "profile.json"
        code = main(
            [
                "run",
                "table03",
                "--scale",
                "0.08",
                "--seed",
                "2",
                "--profile-out",
                str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert "frames" in doc
        assert doc["total_ticks"] == sum(doc["frames"].values())

    def test_profile_report_text_and_json(self, capsys, tmp_path):
        import json

        path = self._write_profile(
            tmp_path / "p.json",
            {"study;SG;fd;fd.refine": 9_000, "study;SG;screen.cell": 1_000},
        )
        assert main(["profile-report", path]) == 0
        out = capsys.readouterr().out
        assert "PROFILE HOTSPOTS" in out
        assert "study;SG;fd;fd.refine" in out
        assert main(["profile-report", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_ticks"] == 10_000
        assert doc["hotspots"][0]["frame"] == "study;SG;fd;fd.refine"

    def test_profile_report_writes_collapsed(self, capsys, tmp_path):
        path = self._write_profile(
            tmp_path / "p.json", {"study;SG;fd.refine": 7}
        )
        collapsed = tmp_path / "collapsed.txt"
        code = main(
            ["profile-report", path, "--collapsed", str(collapsed)]
        )
        assert code == 0
        assert collapsed.read_text() == "study;SG;fd.refine 7\n"

    def test_profile_report_missing_source(self, capsys, tmp_path):
        assert main(["profile-report", str(tmp_path / "nope.json")]) == 2

    def test_profile_diff_clean_and_regressed(self, capsys, tmp_path):
        base = self._write_profile(
            tmp_path / "a.json", {"study;SG;fd.refine": 10_000}
        )
        worse = self._write_profile(
            tmp_path / "b.json", {"study;SG;fd.refine": 14_000}
        )
        assert main(["profile-diff", base, base]) == 0
        capsys.readouterr()
        assert main(["profile-diff", base, worse]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # A custom threshold can wave the same growth through.
        code = main(
            ["profile-diff", base, worse, "--threshold", "0.5"]
        )
        assert code == 0

    def test_profile_diff_missing_input(self, capsys, tmp_path):
        base = self._write_profile(
            tmp_path / "a.json", {"study;SG;fd.refine": 10}
        )
        assert main(["profile-diff", base, str(tmp_path / "nope")]) == 2
