"""Tests for the production LSH candidate path (repro.joinability.lshindex).

The load-bearing property throughout: the LSH path is an *exact*
replacement for the all-pairs walk — candidate generation is a provable
superset of the answer, and the surviving candidates go through the
identical Jaccard verify — so pair sets match element for element, at
both paper thresholds, on anything we can throw at it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, Table
from repro.joinability import (
    DEFAULT_LSH_PARAMS,
    LshParams,
    TableJoinSignatures,
    align_signatures,
    analyze_joinability,
    analyze_joinability_lsh,
    build_profiles,
    compute_table_signatures,
    empty_table_signatures,
    find_joinable_pairs,
    generate_candidates,
    lsh_joinable_pairs_flagged,
    prefix_length,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience.budget import BudgetExceeded, WorkMeter
from tests.test_joinability_pairs import wrap

THRESHOLDS = (0.9, 0.7)


def _corpus_from_value_sets(value_sets):
    """One single-column table per value set (>= 10 uniques each)."""
    tables = []
    for i, values in enumerate(value_sets):
        tables.append(
            wrap(
                Table(f"t{i}", [Column("a", sorted(values))]),
                resource=f"r{i}",
            )
        )
    return tables


@st.composite
def overlapping_value_sets(draw):
    """Families of value sets with engineered heavy overlaps.

    Sets are built from a shared pool so high-Jaccard pairs actually
    occur; each set keeps >= 10 values to pass the eligibility floor.
    """
    pool = [f"v{i}" for i in range(30)]
    n_sets = draw(st.integers(2, 6))
    sets = []
    for _ in range(n_sets):
        base = draw(st.integers(0, 10))
        size = draw(st.integers(10, 20))
        sets.append({pool[(base + k) % len(pool)] for k in range(size)})
    return sets


class TestPrefixLength:
    def test_exact_multiples_do_not_round_up(self):
        # 0.7 * 10 == 7 exactly: the prefix must keep 10 - 7 + 1 = 4
        # tokens, not shrink to 3 via float round-up (6.999... -> 7).
        assert prefix_length(10, 0.7) == 4

    def test_threshold_one_keeps_one_token(self):
        assert prefix_length(25, 1.0) == 1

    def test_full_prefix_at_tiny_thresholds(self):
        # alpha floors at 1, so the prefix never exceeds the set size.
        assert prefix_length(12, 0.01) == 12


class TestCandidateSuperset:
    @given(overlapping_value_sets())
    @settings(max_examples=60, deadline=None)
    def test_candidates_cover_all_joinable_pairs(self, value_sets):
        profiles, _ = build_profiles(_corpus_from_value_sets(value_sets))
        for threshold in THRESHOLDS:
            exact = {
                (p.left, p.right)
                for p in find_joinable_pairs(profiles, threshold)
            }
            candidates = set(generate_candidates(profiles, threshold))
            assert exact <= candidates

    @given(overlapping_value_sets())
    @settings(max_examples=60, deadline=None)
    def test_banded_survivors_equal_all_pairs(self, value_sets):
        tables = _corpus_from_value_sets(value_sets)
        for threshold in THRESHOLDS:
            exact = analyze_joinability("XX", tables, threshold)
            lsh = analyze_joinability_lsh("XX", tables, threshold)
            assert lsh.pairs == exact.pairs

    def test_candidates_sorted_and_cross_table(self, study):
        portal = study.portal("CA")
        profiles, _ = build_profiles(portal.report.clean_tables)
        candidates = generate_candidates(profiles, 0.9)
        assert candidates == sorted(candidates)
        for left, right in candidates:
            assert left < right
            assert (
                profiles[left].table_index != profiles[right].table_index
            )


class TestPairSetEquality:
    def test_identical_analyses_on_seeded_corpus(self, study):
        """The tentpole contract, on every portal at both thresholds."""
        for portal in study:
            tables = portal.screened_tables()
            for threshold in THRESHOLDS:
                exact = analyze_joinability(
                    portal.code, tables, threshold
                )
                lsh = analyze_joinability_lsh(
                    portal.code, tables, threshold, seed=study.config.seed
                )
                assert lsh.pairs == exact.pairs
                assert lsh.stats == exact.stats
                assert lsh.column_neighbors == exact.column_neighbors
                assert lsh.table_neighbors == exact.table_neighbors

    def test_candidate_counts_drop(self, study):
        portal = study.portal("US")
        tables = portal.screened_tables()
        exact_metrics, lsh_metrics = MetricsRegistry(), MetricsRegistry()
        analyze_joinability(
            portal.code, tables, 0.9,
            meter=WorkMeter(None, metrics=exact_metrics),
        )
        analyze_joinability_lsh(
            portal.code, tables, 0.9,
            meter=WorkMeter(None, metrics=lsh_metrics),
            seed=study.config.seed,
        )
        exact = exact_metrics.snapshot()["join.candidate_pairs"]["value"]
        lsh = lsh_metrics.snapshot()["join.candidate_pairs"]["value"]
        assert 0 < lsh
        assert lsh * 5 <= exact

    def test_missing_signatures_still_exact(self, study):
        """Truncated joinsig units degrade speed, never answers."""
        portal = study.portal("CA")
        tables = portal.screened_tables()
        fallbacks = {
            i: empty_table_signatures(t.resource_id)
            for i, t in enumerate(tables)
        }
        exact = analyze_joinability(portal.code, tables, 0.9)
        degraded = analyze_joinability_lsh(
            portal.code, tables, 0.9, table_signatures=fallbacks
        )
        assert degraded.pairs == exact.pairs


class TestSignatureUnits:
    def test_unit_signatures_match_inline(self, study):
        """Worker-computed signatures align with the profile order."""
        portal = study.portal("CA")
        tables = portal.screened_tables()
        table_signatures = {
            i: compute_table_signatures(
                t.clean, t.resource_id, seed=study.config.seed
            )
            for i, t in enumerate(tables)
        }
        via_units = analyze_joinability_lsh(
            portal.code, tables, 0.9,
            table_signatures=table_signatures, seed=study.config.seed,
        )
        inline = analyze_joinability_lsh(
            portal.code, tables, 0.9, seed=study.config.seed
        )
        assert via_units.pairs == inline.pairs

    def test_alignment_rejects_mismatches(self):
        tables = _corpus_from_value_sets([{f"v{i}" for i in range(12)}])
        profiles, _ = build_profiles(tables)
        good = compute_table_signatures(tables[0].clean, "r0")
        aligned = align_signatures(profiles, {0: good})
        assert aligned[0] is not None
        # A renamed column (stale unit from another corpus) must not
        # band-filter with the wrong signature — it degrades to None.
        bad = TableJoinSignatures(
            table_id="r0",
            columns=tuple(
                type(c)(
                    column_name="other",
                    num_unique=c.num_unique,
                    signature=c.signature,
                )
                for c in good.columns
            ),
        )
        assert align_signatures(profiles, {0: bad})[0] is None
        assert align_signatures(profiles, {})[0] is None

    def test_payload_round_trip(self, study):
        portal = study.portal("SG")
        table = portal.screened_tables()[0]
        signatures = compute_table_signatures(
            table.clean, table.resource_id, seed=study.config.seed
        )
        assert (
            TableJoinSignatures.from_payload(signatures.to_payload())
            == signatures
        )

    def test_signature_meter_ticks(self):
        tables = _corpus_from_value_sets([{f"v{i}" for i in range(15)}])
        metrics = MetricsRegistry()
        meter = WorkMeter(None, metrics=metrics)
        compute_table_signatures(tables[0].clean, "r0", meter=meter)
        assert meter.spent == 15


class TestTruncation:
    def test_verify_loop_truncates_cleanly(self):
        value_sets = [{f"v{i}" for i in range(12)} for _ in range(4)]
        tables = _corpus_from_value_sets(value_sets)
        profiles, _ = build_profiles(tables)
        # Budget two ticks short of the full run: the cut lands inside
        # the verify loop (its ticks come last) and must truncate
        # cleanly rather than raise.
        full_meter = WorkMeter(None)
        full_pairs, _ = lsh_joinable_pairs_flagged(profiles, 0.9, full_meter)
        assert len(full_pairs) == 6  # C(4, 2)
        pairs, truncated = lsh_joinable_pairs_flagged(
            profiles, 0.9, WorkMeter(full_meter.spent - 2)
        )
        assert truncated
        assert len(pairs) < 6

    def test_candidate_generation_propagates(self):
        value_sets = [{f"v{i}" for i in range(12)} for _ in range(3)]
        tables = _corpus_from_value_sets(value_sets)
        profiles, _ = build_profiles(tables)
        with pytest.raises(BudgetExceeded):
            generate_candidates(profiles, 0.9, WorkMeter(2))


class TestLshParams:
    def test_default_geometry(self):
        assert DEFAULT_LSH_PARAMS.num_perm == 64
        assert DEFAULT_LSH_PARAMS.bands == 32
        assert DEFAULT_LSH_PARAMS.rows_per_band == 2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            LshParams(num_perm=64, bands=48)
        with pytest.raises(ValueError):
            LshParams(num_perm=8, bands=16)
