"""Tests for the EXPERIMENTS.md reporting generator."""

from repro.experiments.reporting import (
    _comparison_rows,
    _fmt,
    render_experiments_markdown,
)


class TestFormatting:
    def test_fmt_variants(self):
        assert _fmt(True) == "yes"
        assert _fmt(False) == "no"
        assert _fmt(0.1372) == "0.137"
        assert _fmt(447.0) == "447.0"
        assert _fmt(14913) == "14,913"
        assert _fmt("x") == "x"

    def test_comparison_rows_per_portal(self):
        paper = {"frac": {"CA": 0.5, "UK": 0.25}}
        measured = {"CA": {"frac": 0.51}, "UK": {}}
        rows = _comparison_rows(paper, measured)
        assert rows[0] == "| frac (CA) | 0.500 | 0.510 |"
        assert rows[1] == "| frac (UK) | 0.250 | — |"

    def test_scalar_metrics_deferred_to_text(self):
        rows = _comparison_rows({"note": 5.0}, {})
        assert rows == ["| note | 5.000 | see text |"]


class TestRenderMarkdown:
    def test_full_render_on_small_study(self, study):
        text = render_experiments_markdown(study)
        # One section per experiment, plus header and deviations.
        for n in range(1, 12):
            assert f"## table{n:02d} —" in text
        for n in range(1, 9):
            assert f"## figure{n:02d} —" in text
        assert "| metric | paper | measured |" in text
        assert "## Known deviations" in text
        assert f"scale {study.config.scale}" in text
