"""Integration tests for the §2.2 pipeline over generated portals."""

import pytest

from repro.ingest.pipeline import FetchOutcome, ingest_portal
from repro.portal import BlobStore, CkanApi, HttpClient
from repro.portal.models import Dataset, MetadataKind, Portal, Resource
from repro.portal.store import FailureMode

import datetime


def tiny_portal():
    """A hand-built portal exercising every pipeline outcome."""
    store = BlobStore()
    resources = []

    def add(rid, payload=None, failure=None, fmt="CSV"):
        url = f"https://x/{rid}"
        resources.append(Resource(rid, rid, fmt, url))
        if failure is not None:
            store.put_failure(url, failure)
        elif payload is not None:
            store.put(url, payload)

    add("good", b"a,b\n1,2\n3,4\n")
    add("preamble", b"Some Title\na,b,c\n1,2,3\n4,5,6\n")
    add("broken", failure=FailureMode.NOT_FOUND)
    add("timeout", failure=FailureMode.TIMEOUT)
    add("html", b"<html><body>moved</body></html>")
    add("empty", b"")
    add("header-only", b"a,b\n")
    add("wide", ("c," * 150 + "c\n" + "1," * 150 + "1\n").encode())
    add("pdf-notes", b"%PDF-1.4", fmt="PDF")  # not a declared CSV

    dataset = Dataset(
        dataset_id="d1",
        title="t",
        description="",
        topic="x",
        organization="o",
        published=datetime.date(2020, 1, 1),
        metadata_kind=MetadataKind.LACKING,
        resources=tuple(resources),
    )
    portal = Portal(code="XX", name="Test", datasets=[dataset])
    return portal, store


class TestPipelineOutcomes:
    @pytest.fixture(scope="class")
    def report(self):
        portal, store = tiny_portal()
        return ingest_portal(CkanApi(portal), HttpClient(store))

    def test_declared_counts_csv_only(self, report):
        assert report.total_declared_tables == 8  # pdf-notes excluded

    def test_downloadable(self, report):
        # broken + timeout are not downloadable.
        assert report.downloadable_tables == 6

    def test_outcomes(self, report):
        assert report.outcome_counts[FetchOutcome.NOT_DOWNLOADABLE] == 2
        # html page and the empty payload both fail the type sniff...
        assert report.outcome_counts[FetchOutcome.NOT_CSV] == 2
        # ...and a header-only file parses to zero data rows.
        assert report.outcome_counts[FetchOutcome.UNPARSEABLE] == 1
        assert report.outcome_counts[FetchOutcome.READABLE] == 3

    def test_preamble_skipped(self, report):
        table = next(t for t in report.tables if t.resource_id == "preamble")
        assert table.header_index == 1
        assert table.clean.column_names == ("a", "b", "c")

    def test_wide_readable_but_not_analyzable(self, report):
        table = next(t for t in report.tables if t.resource_id == "wide")
        assert table.dropped_as_wide
        assert table.clean is None
        assert not table.analyzable
        assert len(report.clean_tables) == 2

    def test_raw_sizes_recorded(self, report):
        assert all(t.raw_size_bytes > 0 for t in report.tables)

    def test_tables_per_dataset(self, report):
        assert report.tables_per_dataset == {"d1": 8}


class TestPipelineOnGeneratedCorpus:
    def test_readable_subset_of_downloadable(self, study):
        for portal in study:
            report = portal.report
            assert report.readable_tables <= report.downloadable_tables
            assert report.downloadable_tables <= report.total_declared_tables

    def test_sg_nearly_fully_downloadable(self, study):
        # SG's profile is 99% downloadable (2376/2399 in the paper), so
        # at most a stray resource or two may fail.
        report = study.portal("SG").report
        assert (
            report.downloadable_tables
            >= 0.9 * report.total_declared_tables
        )

    def test_ca_downloadable_rate_matches_profile(self, study):
        report = study.portal("CA").report
        rate = report.downloadable_tables / report.total_declared_tables
        assert 0.25 < rate < 0.60  # profile says 0.41

    def test_clean_tables_within_width_cutoff(self, study):
        for portal in study:
            for ingested in portal.report.clean_tables:
                assert ingested.clean.num_columns <= 100

    def test_every_clean_table_nonempty(self, study):
        for portal in study:
            for ingested in portal.report.clean_tables:
                assert ingested.clean.num_rows > 0
                assert ingested.clean.num_columns > 0
