"""Tests for expansion-ratio computation (§5.2 / Figure 8)."""

import pytest

from repro.dataframe import Column, Table, inner_join
from repro.joinability import (
    analyze_joinability,
    expansion_stats,
    pair_expansion_ratio,
)
from tests.test_joinability_pairs import wrap


def analysis_for(tables, threshold=0.5):
    return analyze_joinability("XX", tables, threshold=threshold)


class TestExpansion:
    def test_key_key_join_never_grows(self):
        values = [f"v{i}" for i in range(30)]
        left = Table("l", [Column("a", values)])
        right = Table("r", [Column("b", list(values))])
        analysis = analysis_for([wrap(left), wrap(right)])
        (pair,) = analysis.pairs
        assert pair_expansion_ratio(analysis, pair) == pytest.approx(1.0)

    def test_nonkey_join_grows(self):
        values = [f"v{i % 15}" for i in range(45)]  # each value x3
        left = Table("l", [Column("a", list(values))])
        right = Table("r", [Column("b", list(values))])
        analysis = analysis_for([wrap(left), wrap(right)])
        (pair,) = analysis.pairs
        # 15 values x 3 x 3 = 135 output rows over 45 input rows.
        assert pair_expansion_ratio(analysis, pair) == pytest.approx(3.0)

    def test_matches_materialized_join(self):
        import random

        rng = random.Random(3)
        left = Table(
            "l", [Column("a", [f"v{rng.randint(0, 20)}" for _ in range(60)])]
        )
        right = Table(
            "r", [Column("b", [f"v{rng.randint(0, 20)}" for _ in range(80)])]
        )
        analysis = analysis_for([wrap(left), wrap(right)], threshold=0.1)
        (pair,) = analysis.pairs
        ratio = pair_expansion_ratio(analysis, pair)
        expected = inner_join(left, right, "a", "b").num_rows / 80
        assert ratio == pytest.approx(expected)

    def test_expansion_stats_cover_all_pairs(self, study):
        portal = study.portal("CA")
        analysis = portal.joinability()
        stats = expansion_stats(analysis)
        assert len(stats.ratios) == len(analysis.pairs)
        assert all(r >= 0.0 for r in stats.ratios)

    def test_key_pairs_bounded_by_one(self, study):
        """Pairs with at least one key column cannot expand (paper §5.3)."""
        portal = study.portal("US")
        analysis = portal.joinability()
        ratios = portal.expansion_ratios()
        for pair, ratio in zip(analysis.pairs, ratios):
            left = analysis.profiles[pair.left]
            right = analysis.profiles[pair.right]
            if left.is_key and right.is_key:
                assert ratio <= 1.0 + 1e-9
