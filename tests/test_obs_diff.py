"""Tests for run-to-run drift detection (repro.obs.diff)."""

import copy
import json

import pytest

from repro.obs.diff import (
    RunArtifacts,
    RunLoadError,
    diff_runs,
    load_run,
    render_diff,
)
from repro.obs.stats import TraceData


def make_trace(spans, metrics=None, header=None):
    return TraceData(
        path="synthetic",
        header={"type": "header", **(header or {})},
        spans=spans,
        metrics=metrics or {},
        footer=None,
        problems=[],
    )


def unit(portal, stage, table, *, ops=10, status="ok", span_id=1):
    return {
        "type": "span",
        "id": span_id,
        "parent": None,
        "open": span_id * 2 - 1,
        "close": span_id * 2,
        "name": stage,
        "kind": "unit",
        "status": status,
        "self_ops": ops,
        "attrs": {"portal": portal, "stage": stage, "table": table},
    }


def run(trace, fidelity=None, label="run"):
    return RunArtifacts(label=label, trace=trace, fidelity=fidelity)


BASE_SPANS = [
    unit("SG", "fd", "t1", ops=100, span_id=1),
    unit("SG", "screen", "t1", ops=20, span_id=2),
    unit("CA", "fd", "t2", ops=50, status="truncated", span_id=3),
]
BASE_METRICS = {
    "ops.fd": {"kind": "counter", "value": 150},
    "rows": {"kind": "histogram", "counts": [1, 2], "sum": 30},
}


class TestEqualRuns:
    def test_identical_traces_diff_empty(self):
        a = run(make_trace(BASE_SPANS, BASE_METRICS))
        b = run(make_trace(copy.deepcopy(BASE_SPANS), dict(BASE_METRICS)))
        report = diff_runs(a, b)
        assert not report.has_drift
        assert report.drift_count == 0
        assert "no drift" in render_diff(report)

    def test_wall_ms_is_ignored(self):
        spans = copy.deepcopy(BASE_SPANS)
        for span in spans:
            span["wall_ms"] = 123.4
        report = diff_runs(
            run(make_trace(BASE_SPANS, BASE_METRICS)),
            run(make_trace(spans, dict(BASE_METRICS))),
        )
        assert not report.has_drift

    def test_header_changes_are_informational_not_drift(self):
        report = diff_runs(
            run(make_trace(BASE_SPANS, header={"seed": 2})),
            run(make_trace(copy.deepcopy(BASE_SPANS), header={"seed": 3})),
        )
        assert not report.has_drift
        assert report.header_changes == [{"key": "seed", "a": 2, "b": 3}]


class TestDrift:
    def test_op_delta_per_portal_stage(self):
        changed = copy.deepcopy(BASE_SPANS)
        changed[0]["self_ops"] = 300
        report = diff_runs(
            run(make_trace(BASE_SPANS)), run(make_trace(changed))
        )
        assert {
            "portal": "SG",
            "stage": "fd",
            "ops_a": 100,
            "ops_b": 300,
            "delta": 200,
        } in report.op_deltas

    def test_rel_tol_suppresses_small_deltas(self):
        changed = copy.deepcopy(BASE_SPANS)
        changed[0]["self_ops"] = 104
        strict = diff_runs(
            run(make_trace(BASE_SPANS)), run(make_trace(changed))
        )
        loose = diff_runs(
            run(make_trace(BASE_SPANS)),
            run(make_trace(copy.deepcopy(changed))),
            rel_tol=0.1,
        )
        assert strict.op_deltas
        assert not loose.op_deltas

    def test_outcome_transition_named(self):
        changed = copy.deepcopy(BASE_SPANS)
        changed[2]["status"] = "quarantined"
        report = diff_runs(
            run(make_trace(BASE_SPANS)), run(make_trace(changed))
        )
        assert {
            "portal": "CA",
            "stage": "fd",
            "table": "t2",
            "from": "truncated",
            "to": "quarantined",
        } in report.outcome_transitions
        assert {"portal": "CA", "table": "t2"} in report.quarantine_added

    def test_disappearing_unit_is_absent(self):
        report = diff_runs(
            run(make_trace(BASE_SPANS)),
            run(make_trace(copy.deepcopy(BASE_SPANS[:2]))),
        )
        transitions = {
            (t["portal"], t["table"]): (t["from"], t["to"])
            for t in report.outcome_transitions
        }
        assert transitions[("CA", "t2")] == ("truncated", "absent")

    def test_metric_value_drift(self):
        metrics_b = {
            "ops.fd": {"kind": "counter", "value": 175},
            "rows": {"kind": "histogram", "counts": [1, 2], "sum": 30},
        }
        report = diff_runs(
            run(make_trace(BASE_SPANS, BASE_METRICS)),
            run(make_trace(copy.deepcopy(BASE_SPANS), metrics_b)),
        )
        assert [d["metric"] for d in report.metric_drift] == ["ops.fd"]

    def test_histogram_bucket_drift(self):
        metrics_b = {
            "ops.fd": {"kind": "counter", "value": 150},
            "rows": {"kind": "histogram", "counts": [2, 1], "sum": 30},
        }
        report = diff_runs(
            run(make_trace(BASE_SPANS, BASE_METRICS)),
            run(make_trace(copy.deepcopy(BASE_SPANS), metrics_b)),
        )
        assert [d["metric"] for d in report.metric_drift] == ["rows"]

    def test_missing_metric_is_drift(self):
        report = diff_runs(
            run(make_trace(BASE_SPANS, BASE_METRICS)),
            run(make_trace(copy.deepcopy(BASE_SPANS), {})),
        )
        assert {d["metric"] for d in report.metric_drift} == {
            "ops.fd",
            "rows",
        }

    def test_fidelity_verdict_change(self):
        fid_a = {
            "experiments": [
                {
                    "experiment": "table01",
                    "verdict": "PASS",
                    "checks": [
                        {"metric": "m", "kind": "rank", "verdict": "PASS"}
                    ],
                }
            ]
        }
        fid_b = copy.deepcopy(fid_a)
        fid_b["experiments"][0]["verdict"] = "NEAR"
        fid_b["experiments"][0]["checks"][0]["verdict"] = "NEAR"
        report = diff_runs(
            run(make_trace(BASE_SPANS), fidelity=fid_a),
            run(make_trace(copy.deepcopy(BASE_SPANS)), fidelity=fid_b),
        )
        assert {
            "experiment": "table01",
            "metric": None,
            "from": "PASS",
            "to": "NEAR",
        } in report.fidelity_changes
        assert {
            "experiment": "table01",
            "metric": "m/rank",
            "from": "PASS",
            "to": "NEAR",
        } in report.fidelity_changes

    def test_missing_fidelity_file_is_not_drift(self):
        report = diff_runs(
            run(make_trace(BASE_SPANS), fidelity={"experiments": []}),
            run(make_trace(copy.deepcopy(BASE_SPANS)), fidelity=None),
        )
        assert report.fidelity_changes == []

    def test_render_names_transitions(self):
        changed = copy.deepcopy(BASE_SPANS)
        changed[2]["status"] = "quarantined"
        report = diff_runs(
            run(make_trace(BASE_SPANS)), run(make_trace(changed))
        )
        text = render_diff(report)
        assert "CA/fd/t2: truncated -> quarantined" in text
        assert "total drift entries" in text

    def test_json_report_is_deterministic(self):
        changed = copy.deepcopy(BASE_SPANS)
        changed[0]["self_ops"] = 300
        docs = [
            json.dumps(
                diff_runs(
                    run(make_trace(copy.deepcopy(BASE_SPANS))),
                    run(make_trace(copy.deepcopy(changed))),
                ).as_json(),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert docs[0] == docs[1]


class TestLoadRun:
    def _write_trace(self, path):
        records = [
            {"type": "header", "seed": 2},
            unit("SG", "fd", "t1"),
            {"type": "footer", "spans": 1},
        ]
        path.write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
        )

    def test_loads_bare_trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        artifacts = load_run(path)
        assert artifacts.fidelity is None
        assert len(artifacts.trace.spans) == 1

    def test_loads_run_directory_with_fidelity(self, tmp_path):
        self._write_trace(tmp_path / "trace.jsonl")
        (tmp_path / "fidelity.json").write_text('{"experiments": []}')
        artifacts = load_run(tmp_path)
        assert artifacts.fidelity == {"experiments": []}

    def test_missing_run_raises(self, tmp_path):
        with pytest.raises(RunLoadError):
            load_run(tmp_path / "nope")

    def test_directory_without_trace_raises(self, tmp_path):
        with pytest.raises(RunLoadError):
            load_run(tmp_path)

    def test_corrupt_fidelity_raises(self, tmp_path):
        self._write_trace(tmp_path / "trace.jsonl")
        (tmp_path / "fidelity.json").write_text("{broken")
        with pytest.raises(RunLoadError):
            load_run(tmp_path)
