"""Unit tests for repro.joinability.coltypes (Table 10's taxonomy)."""

from repro.dataframe import Column
from repro.joinability import SemanticType, classify_column


class TestIntegers:
    def test_incremental_sequence(self):
        assert (
            classify_column(Column("id", list(range(1, 200))))
            is SemanticType.INCREMENTAL_INTEGER
        )

    def test_incremental_with_gaps(self):
        values = [i for i in range(1, 150) if i % 10 != 0]
        assert classify_column(Column("id", values)) is (
            SemanticType.INCREMENTAL_INTEGER
        )

    def test_sparse_integers(self):
        values = [13, 907, 5522, 19, 88_431, 242, 77, 1205, 950_001, 66]
        assert classify_column(Column("c", values)) is SemanticType.INTEGER

    def test_years_are_temporal_not_incremental(self):
        # Dense runs of calendar years must not look like record ids.
        years = list(range(1990, 2023)) * 3
        assert classify_column(Column("year", years)) is SemanticType.TIMESTAMP

    def test_negative_start_not_incremental(self):
        values = list(range(-50, 50))
        assert classify_column(Column("c", values)) is SemanticType.INTEGER

    def test_floats_group_with_integers(self):
        assert classify_column(Column("c", [1.5, 2.7, 3.14])) is (
            SemanticType.INTEGER
        )


class TestText:
    def test_iso_dates(self):
        dates = [f"2020-01-{d:02d}" for d in range(1, 29)]
        assert classify_column(Column("d", dates)) is SemanticType.TIMESTAMP

    def test_year_months(self):
        values = [f"2021-{m:02d}" for m in range(1, 13)]
        assert classify_column(Column("d", values)) is SemanticType.TIMESTAMP

    def test_wkt_points(self):
        points = [f"POINT ({lon}.5 43.2)" for lon in range(-80, -60)]
        assert classify_column(Column("p", points)) is SemanticType.GEOSPATIAL

    def test_latlon_pairs(self):
        values = [f"43.{i}, -80.{i}" for i in range(10, 40)]
        assert classify_column(Column("p", values)) is SemanticType.GEOSPATIAL

    def test_repeated_labels_are_categorical(self):
        values = (["Theft", "Fraud", "Assault", "Arson"] * 30)
        assert classify_column(Column("c", values)) is SemanticType.CATEGORICAL

    def test_unique_reference_list_is_categorical(self):
        # A species reference column: short digit-free closed list.
        species = ["Cod", "Haddock", "Herring", "Halibut", "Mackerel",
                   "Lobster", "Shrimp", "Scallop", "Capelin", "Redfish"]
        assert classify_column(Column("c", species)) is (
            SemanticType.CATEGORICAL
        )

    def test_high_cardinality_text_is_string(self):
        values = [f"Project {i} on topic {i * 13}" for i in range(300)]
        assert classify_column(Column("c", values)) is SemanticType.STRING

    def test_booleans_are_categorical(self):
        assert classify_column(Column("c", [True, False] * 10)) is (
            SemanticType.CATEGORICAL
        )

    def test_empty_column_is_string(self):
        assert classify_column(Column("c", [None, None])) is SemanticType.STRING
