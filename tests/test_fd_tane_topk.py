"""Tests for the TANE engine and the JOSIE-style top-k search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, Table
from repro.fd import discover_fds
from repro.fd.tane import (
    discover_fds_tane,
    partition_product,
    stripped_partition,
)
from repro.joinability.index import build_profiles
from repro.joinability.topk import (
    TopKOverlapSearcher,
    brute_force_top_k,
)
from tests.test_joinability_pairs import wrap


class TestStrippedPartitions:
    def test_singletons_dropped(self):
        partition = stripped_partition([0, 1, 0, 2, 1])
        assert sorted(map(sorted, partition)) == [[0, 2], [1, 4]]

    def test_key_column_empty(self):
        assert stripped_partition([0, 1, 2, 3]) == []

    def test_product_refines(self):
        left = stripped_partition([0, 0, 0, 1, 1])
        product = partition_product(left, [5, 5, 6, 7, 7], 5)
        assert sorted(map(sorted, product)) == [[0, 1], [3, 4]]


class TestTaneEngine:
    def test_planted_fd(self, cities_table):
        found = {
            (tuple(sorted(fd.lhs)), fd.rhs)
            for fd in discover_fds_tane(cities_table)
        }
        assert (("city",), "population") in found

    def test_matches_fun_on_fixtures(self, cities_table, fish_table):
        for table in (cities_table, fish_table):
            assert (
                discover_fds_tane(table).as_frozenset()
                == discover_fds(table).as_frozenset()
            )

    def test_matches_fun_on_corpus_tables(self, study):
        for table in study.portal("CA").filtered_tables()[:8]:
            assert (
                discover_fds_tane(table).as_frozenset()
                == discover_fds(table).as_frozenset()
            ), table.name

    @pytest.mark.parametrize("max_lhs", [1, 2, 3])
    def test_lhs_cap(self, fish_table, max_lhs):
        for fd in discover_fds_tane(fish_table, max_lhs=max_lhs):
            assert fd.lhs_size <= max_lhs


@st.composite
def fd_tables(draw):
    n_cols = draw(st.integers(2, 5))
    n_rows = draw(st.integers(0, 25))
    columns = [
        Column(
            f"c{i}",
            draw(
                st.lists(
                    st.one_of(st.integers(0, 4), st.none()),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            ),
        )
        for i in range(n_cols)
    ]
    return Table("t", columns)


@given(fd_tables())
@settings(max_examples=80, deadline=None)
def test_tane_equals_fun_property(table):
    assert (
        discover_fds_tane(table).as_frozenset()
        == discover_fds(table).as_frozenset()
    )


class TestTopKSearch:
    def make_profiles(self, seed=0, n_columns=30):
        rng = random.Random(seed)
        pool = [f"v{i}" for i in range(60)]
        tables = []
        for i in range(n_columns):
            values = rng.sample(pool, rng.randint(12, 40))
            tables.append(
                wrap(
                    Table(f"t{i}", [Column("c", values)]),
                    resource=f"r{i}",
                )
            )
        profiles, _ = build_profiles(tables)
        return profiles

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        profiles = self.make_profiles(seed)
        searcher = TopKOverlapSearcher(profiles)
        rng = random.Random(seed + 100)
        query = frozenset(
            rng.sample([f"v{i}" for i in range(60)], rng.randint(10, 35))
        )
        for k in (1, 3, 10):
            fast = searcher.search(query, k=k)
            slow = brute_force_top_k(profiles, query, k=k)
            assert [(r.column_id, r.overlap) for r in fast] == [
                (r.column_id, r.overlap) for r in slow
            ]

    def test_exclude_table(self):
        profiles = self.make_profiles()
        searcher = TopKOverlapSearcher(profiles)
        query = profiles[0].values
        results = searcher.search(
            query, k=5, exclude_table=profiles[0].table_index
        )
        assert all(
            profiles[r.column_id].table_index != profiles[0].table_index
            for r in results
        )

    def test_self_query_is_perfect_match(self):
        profiles = self.make_profiles()
        searcher = TopKOverlapSearcher(profiles)
        results = searcher.search(profiles[3].values, k=1)
        assert results[0].column_id == 3
        assert results[0].overlap == profiles[3].num_unique
        assert results[0].jaccard == 1.0

    def test_empty_and_zero_k(self):
        profiles = self.make_profiles()
        searcher = TopKOverlapSearcher(profiles)
        assert searcher.search(frozenset(), k=5) == []
        assert searcher.search(profiles[0].values, k=0) == []

    def test_prune_reduces_candidates(self):
        """On a skewed collection the prefix prune must admit fewer
        candidates than the brute-force pool for small k."""
        profiles = self.make_profiles(n_columns=60)
        searcher = TopKOverlapSearcher(profiles)
        query = profiles[0].values
        searcher.search(query, k=1)
        brute_pool = sum(
            1 for p in profiles if query & p.values
        )
        assert searcher.candidates_examined <= brute_pool

    def test_on_corpus(self, study):
        portal = study.portal("US")
        analysis = portal.joinability()
        searcher = TopKOverlapSearcher(analysis.profiles)
        query_profile = analysis.profiles[0]
        results = searcher.search(
            query_profile.values,
            k=5,
            exclude_table=query_profile.table_index,
        )
        expected = brute_force_top_k(
            analysis.profiles,
            query_profile.values,
            k=5,
            exclude_table=query_profile.table_index,
        )
        assert [(r.column_id, r.overlap) for r in results] == [
            (r.column_id, r.overlap) for r in expected
        ]
