"""End-to-end observability contract tests.

The three guarantees the PR makes:

1. **Determinism** — two equal-seed runs with ``--trace-out`` produce
   byte-identical trace files, and a traced run's study outputs are
   identical to an untraced run's.
2. **Structure** — spans strictly nest, and every ``(stage, table)``
   unit executed by the guarded executor has exactly one span whose
   terminal status matches its :class:`StageOutcome`.
3. **Reconciliation** — ``stats`` totals line up with the executor's
   tick ledger and outcome tallies.
"""

import json

import pytest

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.experiments.cli import main
from repro.experiments.registry import run_experiment
from repro.obs.stats import load_trace, outcome_counts, stats_json
from repro.resilience.executor import StageStatus

EXPERIMENTS = ("table05", "table06", "table11")


def _guarded_config(tmp_path, tag, trace_out):
    return StudyConfig(
        scale=0.08,
        seed=2,
        stage_budget=20_000,
        poison_rate=0.05,
        quarantine_dir=str(tmp_path / f"quarantine-{tag}"),
        trace_out=trace_out,
    )


def _run_study(config):
    study = Study.build(config)
    texts = [run_experiment(e, study).text for e in EXPERIMENTS]
    outcomes = [
        outcome
        for portal in study
        if portal.executor is not None
        for outcome in portal.executor.outcomes
    ]
    ticks = sum(
        p.executor.ticks_spent for p in study if p.executor is not None
    )
    counts = {}
    for portal in study:
        if portal.executor is None:
            continue
        for status, n in portal.executor.status_counts().items():
            counts[status.value] = counts.get(status.value, 0) + n
    study.close()
    return texts, outcomes, ticks, counts


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("obs")
    trace_path = tmp_path / "trace.jsonl"
    results = _run_study(_guarded_config(tmp_path, "a", str(trace_path)))
    return trace_path, results


class TestDeterminism:
    def test_equal_seed_traces_are_byte_identical(
        self, traced_run, tmp_path
    ):
        trace_path, _ = traced_run
        second = tmp_path / "again.jsonl"
        _run_study(_guarded_config(tmp_path, "b", str(second)))
        assert trace_path.read_bytes() == second.read_bytes()

    def test_tracing_does_not_change_results(self, traced_run, tmp_path):
        _, (texts, _, ticks, counts) = traced_run
        untraced_texts, _, untraced_ticks, untraced_counts = _run_study(
            _guarded_config(tmp_path, "c", None)
        )
        assert texts == untraced_texts
        assert ticks == untraced_ticks
        assert counts == untraced_counts


class TestStructure:
    def test_spans_strictly_nest(self, traced_run):
        trace_path, _ = traced_run
        trace = load_trace(trace_path)
        assert trace.valid, trace.problems

    def test_one_unit_span_per_executor_outcome(self, traced_run):
        trace_path, (_, outcomes, _, _) = traced_run
        trace = load_trace(trace_path)
        span_units = sorted(
            (
                s["attrs"]["stage"],
                s["attrs"]["table"],
                s["status"],
                bool(s["attrs"].get("replayed", False)),
            )
            for s in trace.unit_spans
        )
        executor_units = sorted(
            (o.stage, o.table_id, o.status.value, o.replayed)
            for o in outcomes
        )
        assert span_units == executor_units

    def test_span_tree_shape(self, traced_run):
        trace_path, _ = traced_run
        trace = load_trace(trace_path)
        kinds = {s["kind"] for s in trace.spans}
        assert {"study", "portal", "stage", "unit"} <= kinds
        by_id = {s["id"]: s for s in trace.spans}
        for span in trace.unit_spans:
            parent = by_id[span["parent"]]
            assert parent["kind"] == "stage"


class TestReconciliation:
    def test_unit_ops_match_executor_ticks(self, traced_run):
        trace_path, (_, _, ticks, _) = traced_run
        trace = load_trace(trace_path)
        assert trace.unit_ops == ticks

    def test_outcome_counts_match_status_counts(self, traced_run):
        trace_path, (_, _, _, counts) = traced_run
        trace = load_trace(trace_path)
        measured = outcome_counts(trace)
        expected = {k: v for k, v in counts.items() if v}
        assert measured == expected

    def test_degradation_has_entries_under_pressure(self, traced_run):
        trace_path, (_, _, _, counts) = traced_run
        doc = stats_json(load_trace(trace_path))
        degraded = counts.get(StageStatus.TRUNCATED.value, 0) + counts.get(
            StageStatus.QUARANTINED.value, 0
        ) + counts.get(StageStatus.FAILED.value, 0)
        assert degraded > 0  # the poisoned, budgeted run must degrade
        assert len(doc["degraded"]) >= degraded

    def test_portal_attribution_sums_to_total(self, traced_run):
        trace_path, _ = traced_run
        doc = stats_json(load_trace(trace_path))
        assert doc["total_ops"] == sum(
            p["ops"] for p in doc["portals"].values()
        )
        for portal in doc["portals"].values():
            assert portal["ops"] == sum(
                s["ops"] for s in portal["stages"].values()
            )


class TestStatsCli:
    def test_stats_text_report(self, traced_run, capsys):
        trace_path, _ = traced_run
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "work-budget attribution" in out
        assert "unit outcomes:" in out
        assert "Degradation ledger" in out

    def test_stats_json_document(self, traced_run, capsys):
        trace_path, (_, _, ticks, _) = traced_run
        assert main(["stats", str(trace_path), "--json", "--top", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["valid"] is True
        assert doc["unit_ops"] == ticks
        assert len(doc["top_tables"]) <= 3
        assert doc["header"]["seed"] == 2

    def test_run_with_trace_out_flag(self, tmp_path, capsys):
        trace = tmp_path / "cli.jsonl"
        code = main(
            [
                "run", "table05",
                "--scale", "0.08",
                "--seed", "2",
                "--stage-budget", "40000",
                "--quarantine-dir", str(tmp_path / "q"),
                "--trace-out", str(trace),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 5" in captured.out
        assert "trace-written" in captured.err
        assert load_trace(trace).valid


class TestJournalReplay:
    def test_replayed_units_charge_zero_ops(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        config = StudyConfig(
            scale=0.08,
            seed=2,
            stage_budget=20_000,
            poison_rate=0.05,
            quarantine_dir=str(tmp_path / "q"),
            checkpoint_dir=str(checkpoint),
            trace_out=str(tmp_path / "first.jsonl"),
        )
        _run_study(config)
        second = StudyConfig(
            scale=0.08,
            seed=2,
            stage_budget=20_000,
            poison_rate=0.05,
            quarantine_dir=str(tmp_path / "q"),
            checkpoint_dir=str(checkpoint),
            trace_out=str(tmp_path / "second.jsonl"),
        )
        _, outcomes, ticks, _ = _run_study(second)
        # Per-table units replay from the study journal; portal-wide
        # stages (pairs, union) are recomputed by design.
        replayed_outcomes = [o for o in outcomes if o.replayed]
        assert replayed_outcomes
        assert all(
            o.stage in ("screen", "fd", "joinsig")
            for o in replayed_outcomes
        )
        trace = load_trace(tmp_path / "second.jsonl")
        assert trace.valid, trace.problems
        replayed = [
            s
            for s in trace.unit_spans
            if s["attrs"].get("replayed")
        ]
        assert len(replayed) == len(replayed_outcomes)
        assert all(s["ops"] == 0 for s in replayed)
        assert all(
            s["attrs"].get("recorded_ticks") is not None for s in replayed
        )
        # Reconciliation holds on a resumed run too: spans charge only
        # the recomputed work, exactly matching the executor's ledger.
        assert trace.unit_ops == ticks
