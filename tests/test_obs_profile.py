"""Tests for the deterministic flame-attribution profiler."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.profile import (
    DEFAULT_MIN_TICKS,
    Profiler,
    collapsed_lines,
    diff_profiles,
    frames_from_trace,
    hotspots,
    inclusive_frames,
    load_any_profile,
    merge_frame_counts,
    prof_scope,
    profile_doc,
    profile_report_json,
    read_profile,
    render_profile_diff,
    render_profile_report,
    write_profile,
)


class TestProfiler:
    def test_attribution_is_exact(self):
        prof = Profiler()
        prof.push("study")
        prof.push("SG")
        prof.add(3, "screen.cell")
        prof.add(2, "screen.cell")
        prof.push("fd")
        prof.add(7, "fd.refine")
        prof.pop()
        prof.add(1, "screen.cell")
        prof.pop()
        prof.pop()
        assert prof.snapshot() == {
            "study;SG;screen.cell": 6,
            "study;SG;fd;fd.refine": 7,
        }
        assert prof.total_ticks == 13

    def test_op_change_flushes(self):
        prof = Profiler(sample_every=10**9)
        prof.push("a")
        prof.add(5, "op1")
        prof.add(5, "op2")
        assert prof.counts[("a", "op1")] == 5

    def test_total_ticks_includes_pending(self):
        prof = Profiler(sample_every=10**9)
        prof.add(5, "op")
        assert prof.counts == {}
        assert prof.total_ticks == 5

    def test_sample_every_never_changes_the_final_profile(self):
        def drive(prof):
            with prof.frame("study", "CA"):
                for _ in range(137):
                    prof.add(3, "screen.cell")
                with prof.frame("fd"):
                    for _ in range(41):
                        prof.add(11, "fd.refine")
            return prof.snapshot()

        base = drive(Profiler(sample_every=1))
        for sample_every in (2, 7, 100, 10**9):
            assert drive(Profiler(sample_every=sample_every)) == base

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Profiler(sample_every=0)

    def test_prof_scope_without_profiler_is_a_noop(self):
        class Meter:
            profiler = None

        with prof_scope(Meter(), "a", "b"):
            pass
        with prof_scope(None, "a"):
            pass

    def test_absorb_merges_shard_snapshots(self):
        worker_a = Profiler()
        with worker_a.frame("study", "SG"):
            worker_a.add(4, "screen.cell")
        worker_b = Profiler()
        with worker_b.frame("study", "SG"):
            worker_b.add(6, "screen.cell")
        with worker_b.frame("study", "CA"):
            worker_b.add(1, "fd.refine")
        merged = Profiler()
        merged.absorb(worker_a.snapshot())
        merged.absorb(worker_b.snapshot())
        assert merged.snapshot() == {
            "study;CA;fd.refine": 1,
            "study;SG;screen.cell": 10,
        }

    def test_merge_frame_counts_matches_absorb(self):
        snaps = [{"a;x": 3, "b;y": 1}, {"a;x": 2, "c;z": 9}]
        prof = Profiler()
        for snap in snaps:
            prof.absorb(snap)
        assert merge_frame_counts(snaps) == prof.snapshot()


# Events: (frame stack, op name, cost).  Partitioned arbitrarily into
# worker shards, the absorbed merge must equal the serial profile —
# the invariant the pooled executor's byte-identical artifacts rest on.
_EVENTS = st.lists(
    st.tuples(
        st.lists(
            st.sampled_from(["study", "SG", "fd", "screen"]),
            max_size=3,
        ),
        st.sampled_from(["fd.refine", "screen.cell", "join.jaccard"]),
        st.integers(1, 50),
    ),
    max_size=40,
)


class TestShardMergeProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        events=_EVENTS,
        n_workers=st.integers(1, 4),
        assignment=st.randoms(use_true_random=False),
        sample_every=st.sampled_from([1, 3, 1000]),
    )
    def test_merged_worker_shards_equal_serial_profile(
        self, events, n_workers, assignment, sample_every
    ):
        serial = Profiler(sample_every=1)
        for stack, op, cost in events:
            with serial.frame(*stack):
                serial.add(cost, op)
        workers = [
            Profiler(sample_every=sample_every) for _ in range(n_workers)
        ]
        for stack, op, cost in events:
            worker = workers[assignment.randrange(n_workers)]
            with worker.frame(*stack):
                worker.add(cost, op)
        merged = Profiler()
        for worker in workers:
            merged.absorb(worker.snapshot())
        assert merged.snapshot() == serial.snapshot()
        assert merged.total_ticks == serial.total_ticks


class TestAggregation:
    def test_hotspots_rank_by_ticks_then_path(self):
        frames = {"b": 5, "a": 5, "c": 9}
        assert hotspots(frames) == [("c", 9), ("a", 5), ("b", 5)]
        assert hotspots(frames, top=1) == [("c", 9)]

    def test_collapsed_lines_are_flamegraph_input(self):
        frames = {"study;SG;fd.refine": 7, "study;CA;screen.cell": 2}
        assert collapsed_lines(frames) == [
            "study;CA;screen.cell 2",
            "study;SG;fd.refine 7",
        ]

    def test_inclusive_frames_sum_unique_names_per_path(self):
        frames = {
            "study;SG;dataframe;fd.refine": 10,
            "study;CA;dataframe;screen.cell": 4,
        }
        inclusive = inclusive_frames(frames)
        assert inclusive["dataframe"] == 14
        assert inclusive["study"] == 14
        assert inclusive["SG"] == 10
        assert inclusive["fd.refine"] == 10

    def test_inclusive_frames_count_repeated_names_once(self):
        assert inclusive_frames({"a;b;a": 5}) == {"a": 5, "b": 5}


class TestArtifactIO:
    def test_write_read_roundtrip(self, tmp_path):
        prof = Profiler(sample_every=100)
        with prof.frame("study", "SG"):
            prof.add(42, "fd.refine")
        path = tmp_path / "profile.json"
        write_profile(path, prof, meta={"scale": 0.1})
        doc = read_profile(path)
        assert doc == profile_doc(prof, meta={"scale": 0.1})
        assert doc["frames"] == {"study;SG;fd.refine": 42}
        assert doc["total_ticks"] == 42
        assert doc["meta"] == {"scale": 0.1}

    def test_artifact_bytes_are_deterministic(self, tmp_path):
        def build(path):
            prof = Profiler()
            with prof.frame("study"):
                prof.add(7, "op.b")
                prof.add(3, "op.a")
            write_profile(path, prof)

        build(tmp_path / "a.json")
        build(tmp_path / "b.json")
        assert (
            (tmp_path / "a.json").read_bytes()
            == (tmp_path / "b.json").read_bytes()
        )
        assert (tmp_path / "a.json").read_text().endswith("\n")

    def test_read_profile_rejects_non_profiles(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"no": "frames"}', encoding="utf-8")
        with pytest.raises(ValueError):
            read_profile(path)

    def test_load_any_profile_falls_back_to_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        lines = [
            {"type": "span", "id": 1, "parent": None, "name": "study",
             "self_ops": 2},
            {"type": "span", "id": 2, "parent": 1, "name": "fd",
             "self_ops": 5},
            {"type": "footer", "spans": 2},
        ]
        trace.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n",
            encoding="utf-8",
        )
        doc = load_any_profile(trace)
        assert doc["frames"] == {"study": 2, "study;fd": 5}
        assert doc["total_ticks"] == 7
        assert doc["meta"]["source"] == "trace"
        assert doc == frames_from_trace(trace)


class TestReport:
    def test_report_json_shape(self):
        prof = Profiler()
        with prof.frame("study", "SG"):
            prof.add(90, "fd.refine")
            prof.add(10, "screen.cell")
        doc = profile_report_json(profile_doc(prof), top=1)
        assert doc["total_ticks"] == 100
        assert doc["frame_count"] == 2
        assert len(doc["hotspots"]) == 1
        top = doc["hotspots"][0]
        assert top["frame"] == "study;SG;fd.refine"
        assert top["ticks"] == 90
        assert top["share"] == pytest.approx(0.9)
        full = profile_report_json(profile_doc(prof))
        inclusive = {e["frame"]: e["ticks"] for e in full["inclusive"]}
        assert inclusive["study"] == 100

    def test_render_report_handles_empty(self):
        text = render_profile_report(profile_doc(Profiler()))
        assert "no frames recorded" in text


class TestDiff:
    def _doc(self, frames):
        return {"frames": frames, "total_ticks": sum(frames.values())}

    def test_growth_above_threshold_regresses(self):
        diff = diff_profiles(
            self._doc({"f": 10_000}), self._doc({"f": 14_000})
        )
        assert diff["regressed"]
        assert diff["regressions"] == ["f"]

    def test_growth_within_threshold_passes(self):
        diff = diff_profiles(
            self._doc({"f": 10_000}), self._doc({"f": 12_000})
        )
        assert not diff["regressed"]
        assert diff["frames_changed"] == 1

    def test_small_frames_never_trip_the_gate(self):
        diff = diff_profiles(self._doc({"f": 10}), self._doc({"f": 900}))
        assert not diff["regressed"]

    def test_new_big_frame_regresses_by_definition(self):
        diff = diff_profiles(
            self._doc({}), self._doc({"f": DEFAULT_MIN_TICKS})
        )
        assert diff["regressed"]
        assert diff["new_frames"] == ["f"]

    def test_vanished_frame_never_fails(self):
        diff = diff_profiles(self._doc({"f": 50_000}), self._doc({}))
        assert not diff["regressed"]
        assert diff["vanished_frames"] == ["f"]

    def test_equal_profiles_diff_empty(self):
        doc = self._doc({"f": 123, "g": 456})
        diff = diff_profiles(doc, doc)
        assert diff["frames_changed"] == 0
        assert not diff["regressed"]

    def test_render_diff_smoke(self):
        diff = diff_profiles(
            self._doc({"f": 10_000}), self._doc({"f": 14_000})
        )
        text = render_profile_diff(diff)
        assert "f" in text
        assert "REGRESSED" in text or "regress" in text.lower()
