"""Unit tests for repro.fd.partitions."""

from repro.dataframe import Column, Table
from repro.fd.partitions import (
    cardinality,
    encode_columns,
    partition_of,
    refine,
    refined_cardinality,
)


class TestEncode:
    def test_dense_ids(self):
        table = Table("t", [Column("a", ["x", "y", "x", None, None])])
        (vector,) = encode_columns(table)
        assert vector[0] == vector[2]
        assert vector[3] == vector[4]
        assert len(set(vector)) == 3

    def test_bool_distinct_from_int(self):
        table = Table("t", [Column("a", [True, 1, 0, False])])
        (vector,) = encode_columns(table)
        assert len(set(vector)) == 4

    def test_int_and_equal_float_distinct(self):
        # 1 and 1.0 compare equal in Python but are different cells in
        # FD semantics (different spellings in the CSV).
        table = Table("t", [Column("a", [1, 1.0])])
        (vector,) = encode_columns(table)
        assert len(set(vector)) == 2


class TestRefine:
    def test_refinement(self):
        labels = [0, 0, 1, 1]
        column = [0, 1, 0, 0]
        refined = refine(labels, column)
        assert cardinality(refined) == 3
        assert refined[2] == refined[3]

    def test_refined_cardinality_matches(self):
        labels = [0, 0, 1, 1, 2]
        column = [5, 6, 5, 5, 5]
        assert refined_cardinality(labels, column) == cardinality(
            refine(labels, column)
        )

    def test_refinement_never_coarsens(self):
        labels = [0, 1, 2]
        column = [9, 9, 9]
        assert cardinality(refine(labels, column)) == 3


class TestPartitionOf:
    def test_multi_column(self):
        table = Table(
            "t",
            [
                Column("a", [1, 1, 2, 2]),
                Column("b", ["x", "y", "x", "x"]),
            ],
        )
        encoded = encode_columns(table)
        labels = partition_of(encoded, [0, 1])
        assert cardinality(labels) == 3

    def test_empty_set_is_single_class(self):
        table = Table("t", [Column("a", [1, 2, 3])])
        encoded = encode_columns(table)
        assert cardinality(partition_of(encoded, [])) == 1

    def test_cardinality_empty(self):
        assert cardinality([]) == 0
