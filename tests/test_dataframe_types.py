"""Unit tests for repro.dataframe.types."""

import pytest

from repro.dataframe.types import (
    NULL_TOKENS,
    DataType,
    is_null,
    is_null_text,
    non_null,
    normalize_null_text,
)


class TestNullTokens:
    def test_paper_null_spellings_present(self):
        # The exact manual list from §3.3.
        for token in ("n/a", "n/d", "nan", "null", "-", "..."):
            assert token in NULL_TOKENS

    def test_empty_string_is_null(self):
        assert is_null_text("")

    def test_case_insensitive(self):
        assert is_null_text("N/A")
        assert is_null_text("NULL")
        assert is_null_text("NaN")

    def test_whitespace_stripped(self):
        assert is_null_text("  n/a  ")
        assert is_null_text("   ")

    def test_regular_values_are_not_null(self):
        for text in ("0", "none?", "na", "--", "x", "nil"):
            assert not is_null_text(text)

    def test_normalize_maps_null_to_none(self):
        assert normalize_null_text("null") is None
        assert normalize_null_text("Ontario") == "Ontario"


class TestIsNull:
    def test_none_is_null(self):
        assert is_null(None)

    def test_values_are_not_null(self):
        for value in (0, 0.0, False, "", "x"):
            assert not is_null(value)

    def test_non_null_filters_preserving_order(self):
        assert non_null([1, None, 2, None, 3]) == [1, 2, 3]
        assert non_null([None, None]) == []


class TestDataType:
    def test_numeric_grouping(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.TEXT.is_numeric
        assert not DataType.BOOLEAN.is_numeric
        assert not DataType.EMPTY.is_numeric

    def test_text_grouping_includes_boolean(self):
        # The Table 4 split groups booleans with text.
        assert DataType.TEXT.is_text
        assert DataType.BOOLEAN.is_text
        assert not DataType.INTEGER.is_text

    def test_empty_is_neither(self):
        assert not DataType.EMPTY.is_text
        assert not DataType.EMPTY.is_numeric

    @pytest.mark.parametrize("dtype", list(DataType))
    def test_values_roundtrip(self, dtype):
        assert DataType(dtype.value) is dtype
