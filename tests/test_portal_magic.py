"""Unit tests for repro.portal.magic (file sniffing)."""

from repro.portal.magic import detect_mime, is_csv


class TestBinarySignatures:
    def test_pdf(self):
        assert detect_mime(b"%PDF-1.4\nrest") == "application/pdf"

    def test_zip(self):
        assert detect_mime(b"PK\x03\x04data") == "application/zip"

    def test_legacy_excel(self):
        assert detect_mime(b"\xd0\xcf\x11\xe0junk") == "application/vnd.ms-excel"

    def test_gzip(self):
        assert detect_mime(b"\x1f\x8bxyz") == "application/gzip"

    def test_empty(self):
        assert detect_mime(b"") == "application/x-empty"


class TestTextDetection:
    def test_html(self):
        assert detect_mime(b"<!DOCTYPE html><html></html>") == "text/html"
        assert detect_mime(b"  <html><body>x</body></html>") == "text/html"

    def test_xml(self):
        assert detect_mime(b"<?xml version='1.0'?><r/>") == "text/xml"

    def test_json(self):
        assert detect_mime(b'{"a": 1}') == "application/json"
        assert detect_mime(b"[1,2,3]") == "application/json"

    def test_csv(self):
        assert is_csv(b"a,b,c\n1,2,3\n4,5,6\n")

    def test_semicolon_csv(self):
        assert is_csv(b"a;b\n1;2\n")

    def test_tab_separated(self):
        assert is_csv(b"a\tb\n1\t2\n")

    def test_single_column_csv(self):
        assert is_csv(b"name\nWaterloo\nGuelph\n")

    def test_nul_bytes_not_csv(self):
        assert not is_csv(b"a,b\x00c\n")

    def test_prose_is_plain_text(self):
        prose = ("The quick brown fox jumps over the lazy dog " * 10).encode()
        assert detect_mime(prose) == "text/plain"

    def test_latin1_csv(self):
        assert is_csv("région,valeur\nQuébec,1\n".encode("latin-1"))
