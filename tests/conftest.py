"""Shared fixtures.

The expensive fixture is a small four-portal study (generation +
ingestion); it is session-scoped and deterministic, so every integration
test shares one corpus.
"""

from __future__ import annotations

import pytest

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.dataframe import Column, Table

#: Scale used by integration tests: small enough to build in seconds,
#: large enough that every analysis has material to chew on.
TEST_SCALE = 0.18
TEST_SEED = 3


@pytest.fixture(scope="session")
def study() -> Study:
    """A shared small study over all four portals."""
    return Study.build(StudyConfig(scale=TEST_SCALE, seed=TEST_SEED))


@pytest.fixture(scope="session")
def ca_portal(study):
    return study.portal("CA")


@pytest.fixture()
def cities_table() -> Table:
    """A small table with a planted FD (city -> province) and a key."""
    return Table(
        "cities",
        [
            Column("id", [1, 2, 3, 4, 5, 6]),
            Column(
                "city",
                ["Waterloo", "Kitchener", "Toronto", "Guelph", "Waterloo",
                 "Toronto"],
            ),
            Column("province", ["ON", "ON", "ON", "ON", "ON", "ON"]),
            Column("population", [121, 257, 2794, 144, 121, 2794]),
        ],
    )


@pytest.fixture()
def fish_table() -> Table:
    """Fact-style table: species x year grid with measures."""
    rows = []
    index = 0
    for year in (2019, 2020, 2021):
        for species, group in (
            ("Cod", "Groundfish"),
            ("Herring", "Pelagic"),
            ("Lobster", "Shellfish"),
            ("Haddock", "Groundfish"),
        ):
            index += 1
            rows.append((species, group, year, (index * 7) % 10))
    return Table.from_rows(
        "landings", ["species", "species_group", "year", "tonnes"], rows
    )
