"""Property-based tests cross-validating the FD engines (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, Table
from repro.fd import discover_fds, discover_fds_naive
from repro.fd.partitions import cardinality, encode_columns, partition_of


@st.composite
def small_tables(draw):
    n_cols = draw(st.integers(2, 5))
    n_rows = draw(st.integers(0, 30))
    domain = draw(st.integers(1, 5))
    columns = [
        Column(
            f"c{i}",
            draw(
                st.lists(
                    st.one_of(st.integers(0, domain), st.none()),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            ),
        )
        for i in range(n_cols)
    ]
    return Table("t", columns)


@given(small_tables())
@settings(max_examples=80, deadline=None)
def test_fun_equals_naive(table):
    assert (
        discover_fds(table).as_frozenset()
        == discover_fds_naive(table).as_frozenset()
    )


@given(small_tables())
@settings(max_examples=80, deadline=None)
def test_discovered_fds_hold_and_are_minimal(table):
    encoded = encode_columns(table)
    names = list(table.column_names)
    position = {name: i for i, name in enumerate(names)}
    fds = list(discover_fds(table))
    for fd in fds:
        lhs_positions = [position[a] for a in sorted(fd.lhs)]
        rhs_position = position[fd.rhs]
        lhs_card = cardinality(partition_of(encoded, lhs_positions))
        joint_card = cardinality(
            partition_of(encoded, lhs_positions + [rhs_position])
        )
        # Validity: adding the RHS does not refine the partition.
        assert joint_card == lhs_card
        # Non-key LHS: the FD would otherwise be trivial.
        assert lhs_card < table.num_rows or not fd.lhs
        # Minimality: every maximal proper subset fails to determine RHS.
        for dropped in fd.lhs:
            subset = [position[a] for a in sorted(fd.lhs - {dropped})]
            sub_card = cardinality(partition_of(encoded, subset))
            sub_joint = cardinality(
                partition_of(encoded, subset + [rhs_position])
            )
            assert sub_joint > sub_card


@given(small_tables())
@settings(max_examples=50, deadline=None)
def test_fd_set_closed_under_row_deletion_is_superset(table):
    """FDs are preserved when rows are removed: the FD set of a subset
    of rows must imply every FD of the full table (possibly with smaller
    minimal LHS)."""
    if table.num_rows < 2:
        return
    subset = table.take(range(table.num_rows - 1))
    full_fds = discover_fds_naive(table, max_lhs=3)
    subset_fds = discover_fds_naive(subset, max_lhs=3)
    subset_index: dict[str, list[frozenset]] = {}
    n_subset = subset.num_rows
    encoded = encode_columns(subset)
    position = {name: i for i, name in enumerate(subset.column_names)}
    for fd in full_fds:
        # The same dependency must still hold on the subset's data
        # (check directly; its minimal form may differ).
        lhs_positions = [position[a] for a in sorted(fd.lhs)]
        lhs_card = cardinality(partition_of(encoded, lhs_positions))
        joint = cardinality(
            partition_of(encoded, lhs_positions + [position[fd.rhs]])
        )
        assert joint == lhs_card
