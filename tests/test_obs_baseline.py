"""Tests for bench-history baselines, the regression gate, and the
append semantics of the bench harness's history writer."""

import importlib.util
import json
import pathlib

import pytest

from repro.obs import baseline
from repro.obs.baseline import (
    BenchRecord,
    comparable_history,
    evaluate_gate,
    gate_all,
    read_history,
    render_bench_report,
    salvage_json_objects,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def record(total_ops, *, seconds=1.0, scale=1.0, seed=7, experiment="table05"):
    return {
        "experiment": experiment,
        "scale": scale,
        "seed": seed,
        "seconds": seconds,
        "ops": {},
        "total_ops": total_ops,
    }


def write_history(path, records):
    path.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")


class TestSalvage:
    def test_well_formed_array(self):
        text = json.dumps([record(10), record(20)])
        assert [r["total_ops"] for r in salvage_json_objects(text)] == [10, 20]

    def test_truncated_tail_keeps_leading_records(self):
        text = json.dumps([record(10), record(20)], indent=2)
        torn = text[: len(text) - 40]  # cut mid-record
        salvaged = salvage_json_objects(torn)
        assert [r["total_ops"] for r in salvaged] == [10]

    def test_garbage_between_records(self):
        text = (
            json.dumps(record(10)) + "\nGARBAGE\n" + json.dumps(record(20))
        )
        assert [r["total_ops"] for r in salvage_json_objects(text)] == [10, 20]

    def test_empty_and_hopeless_inputs(self):
        assert salvage_json_objects("") == []
        assert salvage_json_objects("not json at all") == []
        assert salvage_json_objects("[1, 2, 3]") == []


class TestReadHistory:
    def test_reads_records_in_order(self, tmp_path):
        path = tmp_path / "BENCH_table05.json"
        write_history(path, [record(10), record(20)])
        records = read_history(path)
        assert [r.total_ops for r in records] == [10, 20]
        assert records[0].experiment == "table05"
        assert records[0].index == 0 and records[1].index == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert read_history(tmp_path / "BENCH_nope.json") == []

    def test_malformed_records_are_dropped(self, tmp_path):
        path = tmp_path / "BENCH_table05.json"
        write_history(
            path,
            [
                record(10),
                {"experiment": "table05"},  # no total_ops
                {"scale": "not-a-number", "seed": 7, "total_ops": 5},
                record(20),
            ],
        )
        assert [r.total_ops for r in read_history(path)] == [10, 20]

    def test_partially_written_file(self, tmp_path):
        path = tmp_path / "BENCH_table05.json"
        text = json.dumps([record(10), record(20)], indent=2)
        path.write_text(text[: len(text) - 40])
        assert [r.total_ops for r in read_history(path)] == [10]


class TestComparableHistory:
    def test_filters_to_latest_configuration(self):
        records = [
            BenchRecord("e", 0.5, 7, 1.0, 100, 0),
            BenchRecord("e", 1.0, 7, 1.0, 200, 1),
            BenchRecord("e", 1.0, 3, 1.0, 300, 2),
            BenchRecord("e", 1.0, 7, 1.0, 210, 3),
        ]
        assert [r.total_ops for r in comparable_history(records)] == [200, 210]

    def test_empty_history(self):
        assert comparable_history([]) == []


class TestGate:
    def _records(self, ops_list):
        return [
            BenchRecord("table05", 1.0, 7, 1.0, ops, i)
            for i, ops in enumerate(ops_list)
        ]

    def test_no_history_returns_none(self):
        assert evaluate_gate([]) is None

    def test_first_run_has_no_baseline(self):
        verdict = evaluate_gate(self._records([100_000]))
        assert verdict is not None
        assert verdict.baseline_ops is None
        assert not verdict.regressed

    def test_double_ops_regresses(self):
        verdict = evaluate_gate(
            self._records([100_000, 101_000, 99_000, 200_000])
        )
        assert verdict.regressed
        assert verdict.baseline_ops == pytest.approx(100_000)
        assert verdict.ops_ratio == pytest.approx(2.0)
        assert "exceeds baseline" in verdict.reason

    def test_within_threshold_passes(self):
        verdict = evaluate_gate(self._records([100_000, 101_000, 110_000]))
        assert not verdict.regressed

    def test_improvement_passes(self):
        verdict = evaluate_gate(self._records([100_000, 100_000, 50_000]))
        assert not verdict.regressed
        assert "below baseline" in verdict.reason

    def test_min_ops_floor_ignores_tiny_jitter(self):
        # 2x relative blow-up, but only 400 ops in absolute terms —
        # under the floor, cached/near-empty benches must not gate.
        verdict = evaluate_gate(self._records([400, 400, 800]))
        assert not verdict.regressed
        assert evaluate_gate(
            self._records([400, 400, 800]), min_ops=100
        ).regressed

    def test_window_bounds_the_baseline(self):
        ops = [1_000_000] * 10 + [100_000] * 5 + [130_000]
        verdict = evaluate_gate(self._records(ops), window=5)
        assert verdict.baseline_ops == pytest.approx(100_000)
        assert verdict.regressed

    def test_config_change_resets_comparability(self):
        records = [
            BenchRecord("e", 0.5, 7, 1.0, 100, 0),
            BenchRecord("e", 1.0, 7, 1.0, 100_000, 1),
        ]
        verdict = evaluate_gate(records)
        assert verdict.baseline_ops is None  # scale changed; no baseline
        assert not verdict.regressed

    def _join_records(self, candidates_list, total_ops=100_000):
        return [
            BenchRecord(
                "join", 1.0, 7, 1.0, total_ops, i,
                join_candidates=candidates,
                join_verify_ops=candidates,
            )
            for i, candidates in enumerate(candidates_list)
        ]

    def test_candidate_creep_regresses_even_with_flat_ops(self):
        # total_ops flat, but candidates quadrupled: the LSH filter
        # stopped filtering and the gate must say so.
        verdict = evaluate_gate(
            self._join_records([2_000, 2_100, 1_900, 8_000])
        )
        assert verdict.regressed
        assert "join_candidates" in verdict.reason
        assert verdict.baseline_join_candidates == pytest.approx(2_000)

    def test_stable_candidates_pass(self):
        verdict = evaluate_gate(
            self._join_records([2_000, 2_100, 1_900, 2_050])
        )
        assert not verdict.regressed
        assert verdict.join_candidates == 2_050

    def test_candidate_floor_ignores_tiny_jitter(self):
        # 3x relative, but only 20 candidates absolute — below the
        # DEFAULT_MIN_CANDIDATES floor, too small to mean anything.
        verdict = evaluate_gate(self._join_records([10, 10, 30]))
        assert not verdict.regressed

    def test_records_without_join_fields_never_gate_on_them(self):
        # Pre-index histories parse with join_candidates=0 and a zero
        # baseline disables the candidate gate entirely.
        verdict = evaluate_gate(self._records([100_000, 100_000, 110_000]))
        assert not verdict.regressed
        assert verdict.join_candidates == 0.0

    def test_join_fields_parse_tolerantly(self):
        parsed = BenchRecord.from_mapping(
            record(5_000), experiment="table05", index=0
        )
        assert parsed.join_candidates == 0.0
        assert parsed.join_verify_ops == 0.0
        enriched = BenchRecord.from_mapping(
            record(5_000) | {"join_candidates": 42, "join_verify_ops": 40},
            experiment="table05",
            index=0,
        )
        assert enriched.join_candidates == 42.0
        assert enriched.join_verify_ops == 40.0


class TestGateAllAndReport:
    def test_gate_all_scans_root(self, tmp_path):
        write_history(
            tmp_path / "BENCH_table05.json",
            [record(100_000), record(250_000)],
        )
        write_history(
            tmp_path / "BENCH_figure01.json",
            [record(50_000, experiment="figure01")] * 3,
        )
        verdicts = gate_all(tmp_path)
        assert [v.experiment for v in verdicts] == ["figure01", "table05"]
        assert [v.regressed for v in verdicts] == [False, True]

    def test_report_renders_verdicts(self, tmp_path):
        write_history(
            tmp_path / "BENCH_table05.json",
            [record(100_000), record(250_000)],
        )
        text = render_bench_report(gate_all(tmp_path))
        assert "table05" in text
        assert "REGRESSED" in text
        assert "regressions: 1" in text

    def test_report_with_no_history(self):
        assert "no bench history" in render_bench_report([])


def _load_harness():
    spec = importlib.util.spec_from_file_location(
        "bench_harness", REPO_ROOT / "benchmarks" / "_harness.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestAppendBenchRecord:
    """Append semantics of the bench harness's history writer."""

    def test_appends_and_round_trips(self, tmp_path):
        harness = _load_harness()
        for ops in (10, 20, 30):
            harness._append_bench_record(
                "table05", record(ops), root=tmp_path
            )
        assert [
            r.total_ops
            for r in read_history(tmp_path / "BENCH_table05.json")
        ] == [10, 20, 30]

    def test_append_salvages_partially_written_file(self, tmp_path):
        harness = _load_harness()
        path = tmp_path / "BENCH_table05.json"
        text = json.dumps([record(10), record(20)], indent=2)
        path.write_text(text[: len(text) - 40])  # torn tail
        harness._append_bench_record("table05", record(30), root=tmp_path)
        assert [r.total_ops for r in read_history(path)] == [10, 30]

    def test_append_replaces_atomically(self, tmp_path):
        harness = _load_harness()
        harness._append_bench_record("table05", record(10), root=tmp_path)
        # No temp file left behind, and the result is valid JSON.
        assert list(tmp_path.iterdir()) == [tmp_path / "BENCH_table05.json"]
        loaded = json.loads(
            (tmp_path / "BENCH_table05.json").read_text()
        )
        assert isinstance(loaded, list) and len(loaded) == 1

    def test_gate_fires_through_harness(self, tmp_path):
        harness = _load_harness()
        write_history(
            tmp_path / "BENCH_table05.json",
            [record(100_000), record(101_000), record(99_000)],
        )
        path = harness._append_bench_record(
            "table05", record(200_000), root=tmp_path
        )
        harness.GATE["fail_on_regression"] = True
        try:
            with pytest.raises(AssertionError, match="regression gate"):
                harness._check_regression_gate(path)
        finally:
            harness.GATE["fail_on_regression"] = False

    def test_gate_quiet_when_disabled(self, tmp_path):
        harness = _load_harness()
        write_history(
            tmp_path / "BENCH_table05.json",
            [record(100_000), record(200_000)],
        )
        harness._check_regression_gate(tmp_path / "BENCH_table05.json")


class TestServingMetrics:
    """Serving-bench fields on records, the gate key, and the report."""

    def _serve_record(self, total_ops, *, clients=48, shed=0.25):
        return record(total_ops, experiment="serve") | {
            "clients": clients,
            "p50_ops": 5.0,
            "p99_ops": 190.0,
            "shed_rate": shed,
        }

    def test_from_mapping_parses_serving_fields(self):
        parsed = BenchRecord.from_mapping(
            self._serve_record(1000), experiment="serve", index=0
        )
        assert parsed.clients == 48
        assert parsed.p50_ops == 5.0
        assert parsed.p99_ops == 190.0
        assert parsed.shed_rate == 0.25

    def test_compute_records_default_to_zero(self):
        parsed = BenchRecord.from_mapping(
            record(1000), experiment="table05", index=0
        )
        assert parsed.clients == 0
        assert parsed.p50_ops == parsed.p99_ops == parsed.shed_rate == 0.0

    def test_client_population_splits_comparability(self):
        records = [
            BenchRecord("serve", 1.0, 7, 1.0, 100, 0, clients=48),
            BenchRecord("serve", 1.0, 7, 1.0, 900, 1, clients=224),
            BenchRecord("serve", 1.0, 7, 1.0, 110, 2, clients=48),
        ]
        assert [r.total_ops for r in comparable_history(records)] == [
            100,
            110,
        ]
        # The 224-client soak never gates against the 48-client smokes.
        verdict = evaluate_gate(records[:2])
        assert verdict.baseline_ops is None
        assert verdict.clients == 224

    def test_verdict_carries_serving_fields(self, tmp_path):
        for ops in (1000, 1010):
            baseline.append_record(
                "serve", self._serve_record(ops), root=tmp_path
            )
        (verdict,) = gate_all(tmp_path)
        assert verdict.clients == 48
        assert verdict.shed_rate == 0.25
        assert verdict.as_json()["p99_ops"] == 190.0

    def test_report_renders_serving_block(self, tmp_path):
        baseline.append_record(
            "serve", self._serve_record(1000), root=tmp_path
        )
        write_history(
            tmp_path / "BENCH_table05.json", [record(100_000)]
        )
        text = render_bench_report(gate_all(tmp_path))
        assert "clients" in text and "shed" in text
        assert "25.0%" in text
        # Compute benches stay out of the serving block.
        serving_block = text.split("serving")[1]
        assert "table05" not in serving_block

    def test_report_omits_serving_block_without_serve_runs(self, tmp_path):
        write_history(
            tmp_path / "BENCH_table05.json", [record(100_000)]
        )
        assert "clients" not in render_bench_report(gate_all(tmp_path))


class TestAppendRecordShared:
    """baseline.append_record — the shared history writer."""

    def test_creates_missing_directory(self, tmp_path):
        root = tmp_path / "deep" / "nested"
        path = baseline.append_record("serve", record(10), root=root)
        assert path == root / "BENCH_serve.json"
        assert [r.total_ops for r in read_history(path)] == [10]

    def test_salvages_and_appends(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        text = json.dumps([record(10), record(20)], indent=2)
        path.write_text(text[: len(text) - 40])  # torn tail
        baseline.append_record("serve", record(30), root=tmp_path)
        assert [r.total_ops for r in read_history(path)] == [10, 30]

    def test_atomic_replace_leaves_no_temp_file(self, tmp_path):
        baseline.append_record("serve", record(10), root=tmp_path)
        assert list(tmp_path.iterdir()) == [tmp_path / "BENCH_serve.json"]


class TestDefaultsExist:
    def test_module_defaults(self):
        assert 0 < baseline.DEFAULT_THRESHOLD < 1
        assert baseline.DEFAULT_WINDOW >= 2
        assert baseline.DEFAULT_MIN_OPS > 0
