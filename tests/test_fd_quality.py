"""Tests for the accidental-vs-real FD classifier (repro.fd.quality)."""

import pytest

from repro.dataframe import Column, Table
from repro.fd import FD, discover_fds
from repro.fd.quality import (
    ClassifierEvaluation,
    evaluate_classifier,
    planted_fd_keys,
    score_all,
    score_fd,
)
from repro.generator.lineage import ColumnLineage, ColumnRole, TableLineage
from repro.generator.lineage import PublicationStyle


def deep_fd_table(n_cities=8, repeats=20):
    """city -> province with deep, broad evidence."""
    cities = [f"City{i}" for i in range(n_cities)]
    provinces = [f"P{i % 3}" for i in range(n_cities)]
    rows = []
    for r in range(repeats):
        for city, province in zip(cities, provinces):
            rows.append((city, province, r))
    return Table.from_rows("t", ["city", "province", "rep"], rows)


class TestScoring:
    def test_well_evidenced_fd_is_real(self):
        table = deep_fd_table()
        fd = FD(frozenset({"city"}), "province")
        scored = score_fd(table, fd)
        assert scored.support == 8
        assert scored.falsification_chances == 8 * 19
        assert scored.is_real

    def test_barely_tested_fd_is_accidental(self):
        # Two near-unique columns: the FD holds but proves nothing.
        table = Table(
            "t",
            [
                Column("a", [f"x{i}" for i in range(20)] + ["x0"]),
                Column("b", [f"y{i}" for i in range(20)] + ["y0"]),
            ],
        )
        fd = FD(frozenset({"a"}), "b")
        scored = score_fd(table, fd)
        assert scored.falsification_chances == 1
        assert not scored.is_real

    def test_one_to_one_near_unique_map_penalized(self):
        # a and b in 1:1 correspondence, each value seen twice: some
        # depth, but the 1:1 shape with shallow depth is suspicious.
        values = [f"v{i}" for i in range(10)] * 2
        table = Table(
            "t",
            [
                Column("a", list(values)),
                Column("b", [v.upper() for v in values]),
            ],
        )
        scored = score_fd(table, FD(frozenset({"a"}), "b"))
        assert scored.rhs_to_lhs_ratio == 1.0
        assert scored.score < 0.5

    def test_wide_lhs_penalized(self):
        table = deep_fd_table()
        narrow = score_fd(table, FD(frozenset({"city"}), "province"))
        wide = score_fd(table, FD(frozenset({"city", "rep"}), "province"))
        assert wide.score < narrow.score

    def test_score_all_skips_empty_lhs(self, cities_table):
        fds = discover_fds(cities_table)
        scored = score_all(cities_table, fds)
        assert all(s.fd.lhs for s in scored)


class TestPlantedKeys:
    def make_lineage(self):
        return TableLineage(
            portal="CA",
            dataset_id="d",
            resource_id="r",
            table_name="t",
            topic="x",
            category="c",
            style=PublicationStyle.DENORMALIZED_SINGLE,
            family_id="f",
            columns=(
                ColumnLineage("l1", "d1", ColumnRole.LEVEL),
                ColumnLineage("l2", "d2", ColumnRole.LEVEL, fd_parent="l1"),
                ColumnLineage("l3", "d3", ColumnRole.LEVEL, fd_parent="l2"),
                ColumnLineage("m", "d4", ColumnRole.MEASURE),
            ),
        )

    def test_direct_and_transitive(self):
        keys = planted_fd_keys(self.make_lineage())
        assert (frozenset({"l1"}), "l2") in keys
        assert (frozenset({"l2"}), "l3") in keys
        assert (frozenset({"l1"}), "l3") in keys  # transitive
        assert (frozenset({"l2"}), "l1") not in keys  # not injective


class TestEvaluation:
    def test_counts(self):
        evaluation = ClassifierEvaluation(
            total_fds=10, planted_fds=4, predicted_real=5, true_positives=3
        )
        assert evaluation.precision == 0.6
        assert evaluation.recall == 0.75
        assert evaluation.baseline_precision == 0.4

    def test_classifier_beats_baseline_on_corpus(self, study):
        """The classifier must separate planted FDs from spurious ones
        better than trusting every discovered FD — the concrete answer
        to the paper's §4.3 research question."""
        scored_by_table = []
        for code in ("CA", "UK", "US"):
            portal = study.portal(code)
            by_resource = {
                t.resource_id: t.clean
                for t in portal.report.clean_tables
            }
            for record in portal.generated.lineage:
                table = by_resource.get(record.resource_id)
                if table is None or not (
                    10 <= table.num_rows <= 2000
                    and 5 <= table.num_columns <= 20
                ):
                    continue
                fds = discover_fds(table)
                scored_by_table.append((record, score_all(table, fds)))
        evaluation = evaluate_classifier(scored_by_table)
        assert evaluation.total_fds > 100
        assert evaluation.planted_fds > 10
        assert evaluation.precision > evaluation.baseline_precision
        assert evaluation.recall > 0.4
