"""Tests for data-dictionary generation and portal disk round-trip."""

from repro.ingest import ingest_portal
from repro.portal import CkanApi, HttpClient
from repro.portal.disk import export_portal, import_portal
from repro.profiling.dictionary import build_dictionary


class TestDataDictionary:
    def test_entries_cover_all_columns(self, cities_table):
        dictionary = build_dictionary(cities_table)
        assert [e.name for e in dictionary.entries] == list(
            cities_table.column_names
        )

    def test_key_flagged(self, cities_table):
        dictionary = build_dictionary(cities_table)
        assert dictionary.entry("id").is_key
        assert "key" in dictionary.entry("id").description

    def test_fd_documented_both_ways(self, fish_table):
        dictionary = build_dictionary(fish_table)
        assert "species_group" in dictionary.entry("species").determines
        assert "species" in dictionary.entry("species_group").determined_by

    def test_examples_are_distinct_non_null(self, cities_table):
        entry = build_dictionary(cities_table).entry("city")
        assert len(entry.example_values) == len(set(entry.example_values))
        assert all(entry.example_values)

    def test_null_ratio_reported(self):
        from repro.dataframe import Column, Table

        table = Table(
            "t",
            [Column("a", [1, 2, 3, 4]), Column("b", [None, None, None, "x"])],
        )
        entry = build_dictionary(table).entry("b")
        assert entry.null_ratio == 0.75
        assert "75% missing" in entry.description

    def test_render(self, fish_table):
        text = build_dictionary(fish_table).to_text()
        assert text.startswith("data dictionary: landings")
        assert "species" in text

    def test_on_corpus_table(self, study):
        table = study.portal("CA").filtered_tables()[0]
        dictionary = build_dictionary(table)
        assert len(dictionary.entries) == table.num_columns
        assert dictionary.num_rows == table.num_rows

    def test_unknown_column(self, cities_table):
        import pytest

        with pytest.raises(KeyError):
            build_dictionary(cities_table).entry("nope")


class TestDiskRoundTrip:
    def test_export_import_preserves_crawl(self, study, tmp_path):
        original = study.portal("SG").generated
        export_portal(original.portal, original.store, tmp_path)
        portal, store = import_portal(tmp_path)

        assert portal.code == original.portal.code
        assert portal.num_datasets == original.portal.num_datasets

        before = ingest_portal(
            CkanApi(original.portal), HttpClient(original.store)
        )
        after = ingest_portal(CkanApi(portal), HttpClient(store))
        assert after.total_declared_tables == before.total_declared_tables
        assert after.downloadable_tables == before.downloadable_tables
        assert after.readable_tables == before.readable_tables

    def test_blob_bytes_identical(self, study, tmp_path):
        original = study.portal("CA").generated
        export_portal(original.portal, original.store, tmp_path)
        _, store = import_portal(tmp_path)
        checked = 0
        for dataset in original.portal.datasets:
            for resource in dataset.resources:
                blob = original.store.get(resource.url)
                if blob is not None and blob.ok:
                    loaded = store.get(resource.url)
                    assert loaded is not None and loaded.ok
                    assert loaded.content == blob.content
                    checked += 1
        assert checked > 10

    def test_failures_preserved(self, study, tmp_path):
        original = study.portal("CA").generated
        export_portal(original.portal, original.store, tmp_path)
        _, store = import_portal(tmp_path)
        for dataset in original.portal.datasets:
            for resource in dataset.resources:
                blob = original.store.get(resource.url)
                if blob is not None and blob.failure is not None:
                    loaded = store.get(resource.url)
                    assert loaded is not None
                    assert loaded.failure is not None

    def test_catalog_is_valid_json(self, study, tmp_path):
        import json

        original = study.portal("UK").generated
        path = export_portal(original.portal, original.store, tmp_path)
        catalog = json.loads(path.read_text(encoding="utf-8"))
        assert catalog["code"] == "UK"
        assert catalog["datasets"]
