"""Property-based tests for the dataframe engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import (
    Column,
    Table,
    inner_join,
    join_output_size,
    read_csv,
    write_csv,
)

# Cells that survive a CSV round-trip unambiguously: ints without
# leading zeros, short clean text, booleans, nulls.
cell = st.one_of(
    st.none(),
    st.integers(min_value=-10_000, max_value=10_000),
    st.booleans(),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll"), max_codepoint=0x7E
        ),
        min_size=1,
        max_size=8,
    ).filter(
        lambda s: s.strip() == s
        and s.lower() not in {"true", "false", "t", "f", "y", "n", "yes",
                              "no", "nan", "null", "n", "inf"}
    ),
)


def tables(min_rows=0, max_rows=20, min_cols=1, max_cols=4):
    @st.composite
    def build(draw):
        n_cols = draw(st.integers(min_cols, max_cols))
        n_rows = draw(st.integers(min_rows, max_rows))
        columns = [
            Column(f"c{i}", draw(st.lists(cell, min_size=n_rows, max_size=n_rows)))
            for i in range(n_cols)
        ]
        return Table("t", columns)

    return build()


@given(tables(min_rows=1))
@settings(max_examples=60)
def test_csv_roundtrip(table):
    back = read_csv(write_csv(table))
    assert back.num_rows == table.num_rows
    assert back.num_columns == table.num_columns
    assert list(back.iter_rows()) == list(table.iter_rows())


@given(tables(), tables())
@settings(max_examples=60)
def test_join_size_formula_matches_materialized_join(left, right):
    size = join_output_size(left, right, "c0", "c0")
    materialized = inner_join(left, right, "c0", "c0")
    assert size == materialized.num_rows


@given(tables(min_rows=1))
@settings(max_examples=60)
def test_distinct_idempotent_and_bounded(table):
    once = table.distinct()
    assert once.num_rows <= table.num_rows
    assert once.distinct().num_rows == once.num_rows
    assert set(once.iter_rows()) == set(table.iter_rows())


@given(tables(min_rows=1))
@settings(max_examples=60)
def test_sort_is_permutation(table):
    ordered = table.sort_by([table.column(0).name])
    assert sorted(map(repr, ordered.iter_rows())) == sorted(
        map(repr, table.iter_rows())
    )


@given(tables(min_rows=1))
@settings(max_examples=60)
def test_uniqueness_score_bounds(table):
    for column in table.columns:
        assert 0.0 <= column.uniqueness_score <= 1.0
        if column.is_key:
            assert column.uniqueness_score == 1.0
            assert column.null_count == 0


@given(tables(min_rows=1))
@settings(max_examples=60)
def test_union_doubles_rows(table):
    doubled = table.union_all(table)
    assert doubled.num_rows == 2 * table.num_rows
    for column in doubled.columns:
        assert column.null_count == 2 * table.column(column.name).null_count
