"""WorkMeter unit tests plus determinism properties for guarded FDs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, Table
from repro.fd import discover_fds, discover_fds_naive, discover_fds_tane
from repro.resilience import BudgetExceeded, WorkMeter


class TestWorkMeter:
    def test_counts_without_budget(self):
        meter = WorkMeter()
        for _ in range(5):
            meter.tick(3)
        assert meter.spent == 15
        assert meter.unlimited
        assert not meter.exhausted
        assert meter.remaining is None

    def test_raises_over_budget(self):
        meter = WorkMeter(budget=10)
        meter.tick(10, op="setup")
        assert meter.remaining == 0
        assert not meter.exhausted  # spent == budget is still in budget
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.tick(op="overflow")
        assert excinfo.value.op == "overflow"
        assert excinfo.value.spent == 11
        assert excinfo.value.budget == 10
        assert meter.exhausted

    def test_exhausted_meter_keeps_raising(self):
        meter = WorkMeter(budget=1)
        with pytest.raises(BudgetExceeded):
            meter.tick(2)
        # Even a zero-cost tick raises once the meter is exhausted:
        # callers unwinding with partial results must not restart work.
        with pytest.raises(BudgetExceeded):
            meter.tick(0)

    def test_charge_precedes_check(self):
        meter = WorkMeter(budget=5)
        with pytest.raises(BudgetExceeded):
            meter.tick(100)
        assert meter.spent == 100  # the attempted work is on the books

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            WorkMeter(budget=0)
        with pytest.raises(ValueError):
            WorkMeter().tick(-1)


@st.composite
def small_tables(draw):
    n_cols = draw(st.integers(2, 5))
    n_rows = draw(st.integers(0, 30))
    domain = draw(st.integers(1, 5))
    columns = [
        Column(
            f"c{i}",
            draw(
                st.lists(
                    st.one_of(st.integers(0, domain), st.none()),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            ),
        )
        for i in range(n_cols)
    ]
    return Table("t", columns)


def _snapshot(fds):
    return (fds.as_frozenset(), fds.truncated)


@given(small_tables(), st.integers(1, 500))
@settings(max_examples=80, deadline=None)
def test_guarded_fds_deterministic(table, budget):
    """Equal table + equal budget => identical (possibly truncated) FDs."""
    first = discover_fds(table, meter=WorkMeter(budget))
    second = discover_fds(table, meter=WorkMeter(budget))
    assert _snapshot(first) == _snapshot(second)


@given(small_tables())
@settings(max_examples=80, deadline=None)
def test_unlimited_meter_reproduces_unguarded(table):
    unguarded = discover_fds(table)
    metered = discover_fds(table, meter=WorkMeter())
    assert not metered.truncated
    assert unguarded.as_frozenset() == metered.as_frozenset()


@given(small_tables(), st.integers(1, 500))
@settings(max_examples=60, deadline=None)
def test_truncated_fds_are_a_subset(table, budget):
    """A budget never invents FDs: it only cuts whole lattice levels."""
    full = discover_fds(table).as_frozenset()
    cut = discover_fds(table, meter=WorkMeter(budget))
    assert cut.as_frozenset() <= full
    if not cut.truncated:
        assert cut.as_frozenset() == full


@given(small_tables(), st.integers(1, 500))
@settings(max_examples=40, deadline=None)
def test_all_engines_accept_meters(table, budget):
    """Every FD engine honors a meter: deterministic when budgeted,
    unchanged when the meter is unlimited."""
    for engine in (discover_fds, discover_fds_naive, discover_fds_tane):
        once = engine(table, meter=WorkMeter(budget))
        again = engine(table, meter=WorkMeter(budget))
        assert _snapshot(once) == _snapshot(again)
        unlimited = engine(table, meter=WorkMeter())
        assert not unlimited.truncated
        assert unlimited.as_frozenset() == engine(table).as_frozenset()
