"""AnalysisExecutor guard semantics and StudyJournal recovery."""

import json

import pytest

from repro.resilience import (
    PORTAL_WIDE,
    AnalysisExecutor,
    StageRecord,
    StageStatus,
    StudyJournal,
    WorkMeter,
)


def spend(ticks):
    """A compute function charging *ticks* then returning them."""

    def compute(meter: WorkMeter):
        meter.tick(ticks, op="test.spend")
        return ticks

    return compute


class TestGuard:
    def test_ok_within_budget(self):
        executor = AnalysisExecutor("SG", stage_budget=100)
        result, outcome = executor.guard("stage", "t1", spend(40))
        assert result == 40
        assert outcome.status is StageStatus.OK
        assert outcome.ticks == 40
        assert outcome.budget == 100
        assert not executor.is_quarantined("t1")

    def test_budget_blowup_quarantines(self, tmp_path):
        executor = AnalysisExecutor(
            "SG", stage_budget=10, quarantine_dir=tmp_path
        )
        result, outcome = executor.guard("stage", "t1", spend(50))
        assert result is None
        assert outcome.status is StageStatus.QUARANTINED
        assert "work budget exhausted" in outcome.detail
        assert executor.is_quarantined("t1")
        record = json.loads((tmp_path / "SG-t1.json").read_text())
        assert record["status"] == "QUARANTINED"
        assert record["ticks"] == 50

    def test_portal_wide_budget_truncates_with_fallback(self, tmp_path):
        executor = AnalysisExecutor(
            "SG", stage_budget=10, quarantine_dir=tmp_path
        )
        result, outcome = executor.guard(
            "pairs",
            PORTAL_WIDE,
            spend(50),
            on_budget=StageStatus.TRUNCATED,
            fallback=lambda: "degraded",
        )
        assert result == "degraded"
        assert outcome.status is StageStatus.TRUNCATED
        assert not executor.is_quarantined(PORTAL_WIDE)
        # Portal-wide units never leave quarantine files.
        assert list(tmp_path.iterdir()) == []

    def test_classify_marks_clean_truncation(self):
        executor = AnalysisExecutor("SG", stage_budget=100)
        _, outcome = executor.guard(
            "fd",
            "t1",
            spend(40),
            classify=lambda _result: StageStatus.TRUNCATED,
        )
        assert outcome.status is StageStatus.TRUNCATED
        assert not executor.is_quarantined("t1")

    def test_crash_records_failed_and_excludes(self, tmp_path):
        executor = AnalysisExecutor("SG", quarantine_dir=tmp_path)

        def explode(meter):
            raise ZeroDivisionError("boom")

        result, outcome = executor.guard("stage", "t1", explode)
        assert result is None
        assert outcome.status is StageStatus.FAILED
        assert outcome.detail == "ZeroDivisionError: boom"
        # Crashed tables are excluded downstream like quarantined ones,
        # but carry no quarantine file.
        assert executor.is_quarantined("t1")
        assert list(tmp_path.iterdir()) == []

    def test_status_counts_and_ticks(self):
        executor = AnalysisExecutor("SG", stage_budget=10)
        executor.guard("stage", "a", spend(5))
        executor.guard("stage", "b", spend(50))
        counts = executor.status_counts()
        assert counts[StageStatus.OK] == 1
        assert counts[StageStatus.QUARANTINED] == 1
        assert executor.ticks_spent == 55


class TestJournalReplay:
    def test_replay_skips_recomputation(self, tmp_path):
        path = tmp_path / "study-SG.jsonl"
        with StudyJournal(path) as journal:
            executor = AnalysisExecutor("SG", stage_budget=100, journal=journal)
            executor.guard(
                "fd",
                "t1",
                spend(40),
                encode=lambda r: {"ticks": r},
                journal_stage=True,
            )

        calls = []

        def must_not_run(meter):
            calls.append(1)
            return 0

        with StudyJournal(path) as journal:
            executor = AnalysisExecutor("SG", stage_budget=100, journal=journal)
            result, outcome = executor.guard(
                "fd",
                "t1",
                must_not_run,
                decode=lambda payload: payload["ticks"],
                journal_stage=True,
            )
        assert calls == []
        assert result == 40
        assert outcome.replayed
        assert outcome.ticks == 40
        # Replays are free: they do not count toward spent work.
        assert executor.ticks_spent == 0

    def test_replayed_quarantine_still_excludes(self, tmp_path):
        path = tmp_path / "study-SG.jsonl"
        with StudyJournal(path) as journal:
            executor = AnalysisExecutor(
                "SG", stage_budget=10, journal=journal
            )
            executor.guard("screen", "t1", spend(50), journal_stage=True)
            assert executor.is_quarantined("t1")

        with StudyJournal(path) as journal:
            executor = AnalysisExecutor("SG", stage_budget=10, journal=journal)
            _, outcome = executor.guard(
                "screen", "t1", spend(0), journal_stage=True
            )
        assert outcome.replayed
        assert outcome.status is StageStatus.QUARANTINED
        assert executor.is_quarantined("t1")

    def test_unjournaled_stage_always_recomputes(self, tmp_path):
        path = tmp_path / "study-SG.jsonl"
        with StudyJournal(path) as journal:
            executor = AnalysisExecutor("SG", journal=journal)
            executor.guard("pairs", PORTAL_WIDE, spend(5))
        with StudyJournal(path) as journal:
            executor = AnalysisExecutor("SG", journal=journal)
            _, outcome = executor.guard("pairs", PORTAL_WIDE, spend(5))
        assert not outcome.replayed


class TestStudyJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = StageRecord(
            stage="fd",
            table_id="t1",
            status="OK",
            ticks=12,
            budget=100,
            payload={"a": 1},
        )
        with StudyJournal(path) as journal:
            journal.record(record)
        reloaded = StudyJournal(path)
        assert len(reloaded) == 1
        assert ("fd", "t1") in reloaded
        assert reloaded.get("fd", "t1") == record

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with StudyJournal(path) as journal:
            journal.record(
                StageRecord(
                    stage="fd", table_id="t1", status="OK", ticks=1, budget=None
                )
            )
            journal.record(
                StageRecord(
                    stage="fd", table_id="t2", status="OK", ticks=2, budget=None
                )
            )
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) - 20], encoding="utf-8")

        journal = StudyJournal(path)
        assert journal.get("fd", "t1") is not None
        assert journal.get("fd", "t2") is None  # torn unit is recomputed

    def test_append_after_reload(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with StudyJournal(path) as journal:
            journal.record(
                StageRecord(
                    stage="fd", table_id="t1", status="OK", ticks=1, budget=None
                )
            )
        with StudyJournal(path) as journal:
            journal.record(
                StageRecord(
                    stage="fd", table_id="t2", status="OK", ticks=2, budget=None
                )
            )
        reloaded = StudyJournal(path)
        assert len(reloaded) == 2

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with StudyJournal(path) as journal:
            journal.record(
                StageRecord(
                    stage="fd", table_id="t1", status="OK", ticks=1, budget=None
                )
            )
            journal.record(
                StageRecord(
                    stage="fd",
                    table_id="t1",
                    status="TRUNCATED",
                    ticks=9,
                    budget=5,
                )
            )
        reloaded = StudyJournal(path)
        assert len(reloaded) == 1
        assert reloaded.get("fd", "t1").status == "TRUNCATED"


def test_budget_validation():
    with pytest.raises(ValueError):
        AnalysisExecutor("SG", stage_budget=0).guard("s", "t", spend(1))
