"""Tests for the structured logger, focused on key=value parseability."""

import io
import json

import pytest

from repro.obs.log import QUIET, VERBOSE, Logger, _format_value


def parse_line(line: str) -> dict:
    """Parse one ``[level] event key=value ...`` line back into fields.

    This is the round-trip contract ``_format_value`` must uphold: a
    reader that splits on spaces and the first ``=``, and JSON-decodes
    anything starting with a double quote, recovers every value.
    """
    tokens = line.split(" ")
    assert tokens[0].startswith("[") and tokens[0].endswith("]")
    fields = {}
    rest = " ".join(tokens[2:])
    while rest:
        key, _, remainder = rest.partition("=")
        if remainder.startswith('"'):
            decoded, end = json.JSONDecoder().raw_decode(remainder)
            fields[key] = decoded
            rest = remainder[end:].lstrip(" ")
        else:
            value, _, rest = remainder.partition(" ")
            fields[key] = value
    return fields


class TestFormatValue:
    def test_plain_tokens_stay_bare(self):
        for value in ("table05", "runs/a", "0.08", "a-b_c.d:e", "x+y%z@w"):
            assert _format_value(value) == value

    @pytest.mark.parametrize(
        "value",
        [
            "has space",
            "",
            "key=value",
            'quoted "inner"',
            "[bracketed]",
            "{braced}",
            "semi;colon",
            "back\\slash",
            "new\nline",
            "tab\there",
            "parens()",
            "<angle>",
        ],
    )
    def test_ambiguous_values_are_json_quoted(self, value):
        formatted = _format_value(value)
        assert formatted.startswith('"')
        assert json.loads(formatted) == value

    @pytest.mark.parametrize(
        "value",
        [
            "plain",
            "a=b",
            "x [1, 2]",
            'say "hi" k=v',
            "trailing space ",
            "",
            "multi=eq=signs",
        ],
    )
    def test_round_trip_through_a_log_line(self, value):
        stream = io.StringIO()
        Logger(stream=stream).info("event", field=value, tail="end")
        line = stream.getvalue().rstrip("\n")
        fields = parse_line(line)
        assert fields["field"] == value
        assert fields["tail"] == "end"

    def test_non_string_values(self):
        assert _format_value(5) == "5"
        assert _format_value(0.25) == "0.25"
        assert _format_value(None) == "None"
        assert _format_value(True) == "True"
        assert _format_value([1, 2]) == '"[1, 2]"'


class TestLogger:
    def test_quiet_drops_info_keeps_warn(self):
        stream = io.StringIO()
        log = Logger(verbosity=QUIET, stream=stream)
        log.info("dropped")
        log.warn("kept", reason="x=y")
        output = stream.getvalue()
        assert "dropped" not in output
        assert '[warn] kept reason="x=y"' in output

    def test_verbose_emits_debug(self):
        stream = io.StringIO()
        Logger(verbosity=VERBOSE, stream=stream).debug("detail", n=3)
        assert "[debug] detail n=3" in stream.getvalue()
