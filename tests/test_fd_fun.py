"""Unit tests for FD discovery (FUN and the naive baseline)."""

import pytest

from repro.dataframe import Column, Table
from repro.fd import FD, discover_fds, discover_fds_naive


class TestFDModel:
    def test_trivial_fd_rejected(self):
        with pytest.raises(ValueError):
            FD(frozenset({"a"}), "a")

    def test_str(self):
        assert str(FD(frozenset({"a", "b"}), "c")) == "{a, b} -> c"
        assert str(FD(frozenset(), "c")) == "{∅} -> c"


class TestDiscovery:
    def test_planted_fd_found(self, cities_table):
        fds = discover_fds(cities_table)
        found = {(tuple(sorted(fd.lhs)), fd.rhs) for fd in fds}
        assert (("city",), "population") in found

    def test_key_lhs_excluded(self, cities_table):
        # id is a key: id -> * would be trivial and must not appear.
        fds = discover_fds(cities_table)
        assert all("id" not in fd.lhs for fd in fds)

    def test_constant_column_yields_empty_lhs(self, cities_table):
        fds = discover_fds(cities_table)
        empties = [fd for fd in fds if not fd.lhs]
        assert [fd.rhs for fd in empties] == ["province"]
        # ...but the paper's prevalence counters ignore constants:
        assert fds.has_nontrivial  # city -> population is genuine

    def test_constant_only_table_not_counted_nontrivial(self):
        table = Table("t", [Column("a", [1, 2, 3]), Column("b", [7, 7, 7])])
        fds = discover_fds(table)
        assert not fds.has_nontrivial
        assert len(fds) == 1 and not next(iter(fds)).lhs

    def test_minimality(self, fish_table):
        fds = discover_fds(fish_table)
        found = {(fd.lhs, fd.rhs) for fd in fds}
        # species -> species_group is minimal...
        assert (frozenset({"species"}), "species_group") in found
        # ...so no superset LHS may also be reported for that RHS.
        for lhs, rhs in found:
            if rhs == "species_group":
                assert not lhs > frozenset({"species"})

    def test_max_lhs_respected(self):
        rows = [(a, b, c, d, (a + b + c + d) % 7)
                for a in range(2) for b in range(2)
                for c in range(2) for d in range(2)]
        table = Table.from_rows("t", ["a", "b", "c", "d", "e"], rows)
        for fd in discover_fds(table, max_lhs=2):
            assert fd.lhs_size <= 2

    def test_single_column_table(self):
        assert len(discover_fds(Table("t", [Column("a", [1, 2])]))) == 0

    def test_empty_table(self):
        assert len(discover_fds(Table.empty("t", ["a", "b"]))) == 0

    def test_one_row_table_has_no_fds(self):
        # Every column is a candidate key: all FDs are trivial.
        table = Table.from_rows("t", ["a", "b"], [(1, 2)])
        assert len(discover_fds(table)) == 0
        assert len(discover_fds_naive(table)) == 0

    def test_duplicate_column_names_ignored_after_first(self):
        table = Table(
            "t", [Column("a", [1, 1, 2]), Column("a", [5, 6, 7]),
                  Column("b", [3, 3, 4])]
        )
        fds = discover_fds(table)
        found = {(tuple(sorted(fd.lhs)), fd.rhs) for fd in fds}
        assert (("a",), "b") in found

    def test_nulls_are_values(self):
        table = Table(
            "t",
            [Column("a", [None, None, 1]), Column("b", ["x", "x", "y"])],
        )
        found = {(tuple(sorted(fd.lhs)), fd.rhs) for fd in discover_fds(table)}
        assert (("a",), "b") in found


class TestFunEqualsNaive:
    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_on_random_tables(self, seed):
        import random

        rng = random.Random(seed)
        n_cols = rng.randint(2, 6)
        n_rows = rng.randint(1, 40)
        columns = [
            Column(
                f"c{i}",
                [rng.randint(0, rng.randint(1, 6)) for _ in range(n_rows)],
            )
            for i in range(n_cols)
        ]
        table = Table("t", columns)
        assert (
            discover_fds(table).as_frozenset()
            == discover_fds_naive(table).as_frozenset()
        )

    def test_agreement_on_generated_table(self, study):
        table = study.portal("CA").filtered_tables()[0]
        narrow = table.project(list(table.column_names[:6]))
        assert (
            discover_fds(narrow, max_lhs=3).as_frozenset()
            == discover_fds_naive(narrow, max_lhs=3).as_frozenset()
        )


class TestFDValidityOnData:
    def test_every_reported_fd_holds(self, study):
        """Each discovered FD must actually hold on the table's data."""
        tables = study.portal("UK").filtered_tables()[:10]
        for table in tables:
            for fd in discover_fds(table):
                mapping = {}
                lhs = sorted(fd.lhs)
                lhs_columns = [table.column(n) for n in lhs]
                rhs_column = table.column(fd.rhs)
                for i in range(table.num_rows):
                    key = tuple(
                        (type(c[i]).__name__, c[i]) for c in lhs_columns
                    )
                    value = (type(rhs_column[i]).__name__, rhs_column[i])
                    assert mapping.setdefault(key, value) == value, (
                        f"{fd} does not hold on {table.name}"
                    )
