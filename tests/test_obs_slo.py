"""Tests for the SLO engine and error-budget monitor (repro.obs.slo)."""

import json

import pytest

from repro.obs.slo import (
    KIND_AVAILABILITY,
    KIND_LATENCY,
    KIND_STALENESS,
    Objective,
    RequestSample,
    SloMonitor,
    SloSpec,
    VERDICT_BURNING,
    VERDICT_EXHAUSTED,
    VERDICT_OK,
    default_slos,
    load_spec,
    replay,
    spec_from_json,
)


def sample(
    at, outcome="ok", ops=1, stale=False, endpoint="package_list", status=200
):
    return RequestSample(
        at=at, endpoint=endpoint, outcome=outcome, status=status, ops=ops,
        stale=stale,
    )


class TestObjective:
    def test_availability_classifies_shed_and_error_bad(self):
        objective = Objective("a", KIND_AVAILABILITY, target=0.9)
        assert objective.classify(sample(0.0, "ok")) is False
        assert objective.classify(sample(0.0, "degraded")) is False
        assert objective.classify(sample(0.0, "shed")) is True
        assert objective.classify(sample(0.0, "error")) is True

    def test_latency_scopes_to_served_requests(self):
        objective = Objective(
            "lat", KIND_LATENCY, target=0.9, bound_ops=100
        )
        assert objective.classify(sample(0.0, "ok", ops=100)) is False
        assert objective.classify(sample(0.0, "degraded", ops=101)) is True
        # Sheds consume no latency budget: they were never served.
        assert objective.classify(sample(0.0, "shed", ops=1)) is None

    def test_latency_endpoint_scope(self):
        objective = Objective(
            "lat", KIND_LATENCY, target=0.9, bound_ops=10,
            endpoint="lake_search",
        )
        slow = sample(0.0, "ok", ops=999, endpoint="package_list")
        assert objective.classify(slow) is None
        in_scope = sample(0.0, "ok", ops=999, endpoint="lake_search")
        assert objective.classify(in_scope) is True

    def test_staleness_counts_stale_served(self):
        objective = Objective("st", KIND_STALENESS, target=0.9)
        assert objective.classify(sample(0.0, "degraded", stale=True)) is True
        assert objective.classify(sample(0.0, "ok")) is False
        assert objective.classify(sample(0.0, "error", stale=True)) is None

    def test_budget_is_one_minus_target(self):
        assert Objective("a", KIND_AVAILABILITY, target=0.995).budget == (
            pytest.approx(0.005)
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Objective("x", "throughput", target=0.9)
        with pytest.raises(ValueError, match="target"):
            Objective("x", KIND_AVAILABILITY, target=1.0)
        with pytest.raises(ValueError, match="bound_ops"):
            Objective("x", KIND_LATENCY, target=0.9)
        with pytest.raises(ValueError, match="burn_threshold"):
            Objective(
                "x", KIND_AVAILABILITY, target=0.9, burn_threshold=0.0
            )


class TestSpec:
    def test_round_trips_through_json(self):
        spec = default_slos()
        assert spec_from_json(json.loads(json.dumps(spec.as_json()))) == spec

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(default_slos().as_json()))
        assert load_spec(path) == default_slos()

    def test_validation(self):
        objective = Objective("a", KIND_AVAILABILITY, target=0.9)
        with pytest.raises(ValueError, match="window"):
            SloSpec(objectives=(objective,), window=0.0)
        with pytest.raises(ValueError, match="min_window_events"):
            SloSpec(objectives=(objective,), min_window_events=0)
        with pytest.raises(ValueError, match="duplicate"):
            SloSpec(objectives=(objective, objective))
        with pytest.raises(ValueError, match="no objectives"):
            spec_from_json({"window": 1.0})


def make_spec(**overrides):
    defaults = dict(
        objectives=(
            Objective(
                "availability", KIND_AVAILABILITY, target=0.5,
                burn_threshold=2.0,
            ),
        ),
        window=1.0,
    )
    defaults.update(overrides)
    return SloSpec(**defaults)


class TestMonitor:
    def test_all_good_is_ok(self):
        monitor = replay(make_spec(), [sample(t / 10) for t in range(20)])
        assert monitor.verdict == VERDICT_OK
        summary = monitor.summary()
        assert summary["objectives"]["availability"]["budget_used"] == 0.0
        assert summary["windows_evaluated"] == 2

    def test_exhausted_when_total_bad_exceeds_budget(self):
        # 6 of 10 shed against a 0.5 budget: the budget is gone.
        samples = [sample(t / 10, "shed") for t in range(6)]
        samples += [sample(0.6 + t / 10) for t in range(4)]
        monitor = replay(make_spec(), samples)
        assert monitor.verdict == VERDICT_EXHAUSTED
        availability = monitor.summary()["objectives"]["availability"]
        assert availability["budget_used"] == pytest.approx(1.2)

    def test_burning_window_without_exhaustion(self):
        # Window 0 burns at 2x (all bad), then three clean windows keep
        # total consumption inside the budget.
        samples = [sample(0.1, "shed"), sample(0.2, "shed")]
        samples += [sample(1.0 + t / 4) for t in range(12)]
        monitor = replay(make_spec(), samples)
        assert monitor.verdict == VERDICT_BURNING
        availability = monitor.summary()["objectives"]["availability"]
        assert availability["max_burn_rate"] == pytest.approx(2.0)
        assert availability["burning_windows"] == 1
        assert availability["budget_used"] < 1.0

    def test_min_window_events_suppresses_noise(self):
        # The same burning window is noise once it needs >= 3 events.
        samples = [sample(0.1, "shed"), sample(0.2, "shed")]
        samples += [sample(1.0 + t / 4) for t in range(12)]
        monitor = replay(make_spec(min_window_events=3), samples)
        assert monitor.verdict == VERDICT_OK
        availability = monitor.summary()["objectives"]["availability"]
        assert availability["burning_windows"] == 0
        assert availability["max_burn_rate"] == 0.0

    def test_empty_windows_are_skipped_not_recorded(self):
        monitor = replay(
            make_spec(), [sample(0.5), sample(100.5), sample(100.6)]
        )
        indices = [w["window"] for w in monitor.windows]
        assert indices == [0, 100]
        assert monitor.windows[1]["start"] == pytest.approx(100.0)
        assert monitor.windows[1]["end"] == pytest.approx(101.0)
        assert monitor.windows[1]["objectives"]["availability"]["events"] == 2

    def test_burn_rate_arithmetic(self):
        # 1 bad of 4 against a 0.5 budget: fraction 0.25, burn 0.5x.
        samples = [sample(0.1, "shed")] + [
            sample(0.2 + t / 10) for t in range(3)
        ]
        monitor = replay(make_spec(), samples)
        window = monitor.windows[0]["objectives"]["availability"]
        assert window["bad_fraction"] == pytest.approx(0.25)
        assert window["burn_rate"] == pytest.approx(0.5)

    def test_observe_after_finalize_raises(self):
        monitor = SloMonitor(make_spec())
        monitor.finalize()
        with pytest.raises(RuntimeError):
            monitor.observe(sample(0.0))

    def test_summary_recent_windows_caps_timeline(self):
        samples = [sample(float(t) + 0.5) for t in range(10)]
        monitor = replay(make_spec(), samples)
        summary = monitor.summary(recent_windows=3)
        assert len(summary["windows"]) == 3
        assert summary["windows_evaluated"] == 10

    def test_replay_sorts_out_of_order_samples(self):
        shuffled = [sample(2.5), sample(0.5, "shed"), sample(1.5)]
        monitor = replay(make_spec(), shuffled)
        assert [w["window"] for w in monitor.windows] == [0, 1, 2]
