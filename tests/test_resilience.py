"""Unit tests for the resilient crawl layer (repro.resilience)."""

import pathlib
import random

import pytest

from repro.portal import (
    BlobStore,
    FailureMode,
    HttpClient,
    TransientFault,
)
from repro.resilience import (
    BreakerConfig,
    CircuitBreaker,
    CircuitState,
    CrawlJournal,
    JournalEntry,
    RateLimitConfig,
    ResilientHttpClient,
    RetryPolicy,
    SimulatedClock,
    TokenBucket,
    host_of,
)


class TestSimulatedClock:
    def test_sleep_advances(self):
        clock = SimulatedClock()
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.now() == 2.0
        assert clock.total_slept == 2.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().sleep(-1.0)

    def test_advance_to_never_goes_backwards(self):
        clock = SimulatedClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0
        clock.advance_to(12.0)
        assert clock.now() == 12.0


class TestRetryPolicy:
    def test_zero_retries_is_single_shot(self):
        policy = RetryPolicy()
        assert policy.max_retries == 0
        assert policy.max_attempts == 1

    def test_retryable_statuses(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.is_retryable(-1)  # timeout sentinel
        assert policy.is_retryable(429)
        assert policy.is_retryable(503)
        assert not policy.is_retryable(404)
        assert not policy.is_retryable(410)
        assert not policy.is_retryable(500)
        assert not policy.is_retryable(200)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=1.0, multiplier=2.0, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.backoff(i, rng) for i in range(4)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_backoff_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_retries=10, base_delay=1.0, multiplier=10.0,
            max_delay=5.0, jitter=0.0,
        )
        assert policy.backoff(6, random.Random(0)) == 5.0

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(max_retries=1, base_delay=0.1, jitter=0.0)
        assert policy.backoff(0, random.Random(0), retry_after=9.0) == 9.0

    def test_jitter_deterministic_under_seed(self):
        policy = RetryPolicy(max_retries=3, jitter=0.5)
        a = [policy.backoff(i, random.Random(42)) for i in range(3)]
        b = [policy.backoff(i, random.Random(42)) for i in range(3)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = SimulatedClock()
        bucket = TokenBucket(RateLimitConfig(rate=2.0, capacity=3.0), clock)
        waits = []
        for _ in range(5):
            wait = bucket.reserve()
            waits.append(wait)
            clock.sleep(wait)
        # Three free burst tokens, then 0.5 s per token at rate 2/s.
        assert waits[:3] == [0.0, 0.0, 0.0]
        assert waits[3] == pytest.approx(0.5)
        assert waits[4] == pytest.approx(0.5)

    def test_refills_while_idle(self):
        clock = SimulatedClock()
        bucket = TokenBucket(RateLimitConfig(rate=1.0, capacity=1.0), clock)
        assert bucket.reserve() == 0.0
        clock.sleep(10.0)  # plenty of idle time refills the bucket
        assert bucket.reserve() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimitConfig(rate=0.0)


class TestCircuitBreaker:
    def make(self, clock=None, **overrides):
        config = BreakerConfig(
            failure_threshold=0.5,
            window=4,
            min_calls=4,
            reset_timeout=30.0,
            **overrides,
        )
        clock = clock or SimulatedClock()
        return CircuitBreaker("portal.example", config, clock), clock

    def test_opens_at_failure_rate_threshold(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED  # 1/3 < 0.5, <min_calls
        breaker.record_failure()  # window full: 2/4 failures
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        clock.sleep(30.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.state is CircuitState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_reopens_on_failure(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        clock.sleep(30.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()

    def test_events_record_transitions_with_timestamps(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        clock.sleep(30.0)
        breaker.allow()
        breaker.record_success()
        states = [event.state for event in breaker.events]
        assert states == [
            CircuitState.OPEN, CircuitState.HALF_OPEN, CircuitState.CLOSED,
        ]
        assert [event.at for event in breaker.events] == [0.0, 30.0, 30.0]


def flaky_store():
    store = BlobStore()
    store.put("https://portal.sim/ok", b"a,b\n1,2\n")
    store.put_transient(
        "https://portal.sim/flaky429",
        b"a,b\n3,4\n",
        TransientFault(FailureMode.RATE_LIMITED, failures=2, retry_after=2.0),
    )
    store.put_transient(
        "https://portal.sim/flaky-timeout",
        b"a,b\n5,6\n",
        TransientFault(FailureMode.TIMEOUT, failures=1),
    )
    store.put_truncated(
        "https://portal.sim/cut", b"a,b\n1,2\n3,4\n5,6\n", truncate_at=8
    )
    store.put_failure("https://portal.sim/gone", FailureMode.GONE)
    return store


class TestResilientHttpClient:
    def test_host_extraction(self):
        assert host_of("https://portal.sim/x/y.csv") == "portal.sim"
        assert host_of("portal.sim/x") == "portal.sim"

    def test_default_wrap_is_single_shot(self):
        inner = HttpClient(flaky_store())
        client = ResilientHttpClient(inner)
        result = client.fetch("https://portal.sim/flaky429")
        assert result.attempts == 1
        assert not result.ok  # no retries: the transient 429 stands
        assert inner.requests_made == 1
        assert client.clock.now() == 0.0  # nothing ever waited

    def test_retries_recover_transient_faults(self):
        client = ResilientHttpClient(
            HttpClient(flaky_store()), policy=RetryPolicy(max_retries=3)
        )
        result = client.fetch("https://portal.sim/flaky429")
        assert result.ok and result.recovered
        assert result.attempts == 3
        # Retry-After (2.0 s) floors both backoff delays.
        assert result.waited >= 4.0

    def test_timeout_recovers_too(self):
        client = ResilientHttpClient(
            HttpClient(flaky_store()), policy=RetryPolicy(max_retries=1)
        )
        result = client.fetch("https://portal.sim/flaky-timeout")
        assert result.ok and result.recovered and result.attempts == 2

    def test_permanent_failures_not_retried(self):
        inner = HttpClient(flaky_store())
        client = ResilientHttpClient(inner, policy=RetryPolicy(max_retries=5))
        result = client.fetch("https://portal.sim/gone")
        assert result.attempts == 1
        assert result.response.status == 410
        assert inner.requests_made == 1

    def test_truncated_body_retried_then_kept_degraded(self):
        client = ResilientHttpClient(
            HttpClient(flaky_store()), policy=RetryPolicy(max_retries=2)
        )
        result = client.fetch("https://portal.sim/cut")
        assert result.attempts == 3  # truncation is worth retrying
        assert result.ok and result.truncated
        assert not result.recovered  # still degraded, not a recovery

    def test_retry_budget_exhausted(self):
        client = ResilientHttpClient(
            HttpClient(flaky_store()), policy=RetryPolicy(max_retries=1)
        )
        result = client.fetch("https://portal.sim/flaky429")
        assert result.attempts == 2 and not result.ok

    def test_retry_schedule_independent_of_crawl_order(self):
        urls = [
            "https://portal.sim/flaky429",
            "https://portal.sim/flaky-timeout",
        ]

        def waits(order):
            client = ResilientHttpClient(
                HttpClient(flaky_store()),
                policy=RetryPolicy(max_retries=3),
                seed=11,
            )
            return {url: client.fetch(url).waited for url in order}

        assert waits(urls) == waits(list(reversed(urls)))

    def test_circuit_opens_and_skips_then_half_opens(self):
        store = BlobStore()
        for index in range(6):
            store.put_transient(
                f"https://down.sim/r{index}",
                b"a,b\n1,2\n",
                TransientFault(FailureMode.UNAVAILABLE, failures=9),
            )
        client = ResilientHttpClient(
            HttpClient(store),
            policy=RetryPolicy(max_retries=1, base_delay=1.0, jitter=0.0),
            breaker_config=BreakerConfig(
                failure_threshold=0.5, window=4, min_calls=2,
                reset_timeout=5.0,
            ),
        )
        first = client.fetch("https://down.sim/r0")
        second = client.fetch("https://down.sim/r1")
        assert not first.ok and not second.ok
        skipped = client.fetch("https://down.sim/r2")
        assert skipped.circuit_skipped and skipped.attempts == 0
        assert skipped.response is None
        # Simulated cool-down elapses: the next fetch is the probe.
        client.clock.sleep(5.0)
        probe = client.fetch("https://down.sim/r3")
        assert not probe.circuit_skipped and probe.attempts > 0
        events = client.circuit_events()
        assert [event.state for event in events][:2] == [
            CircuitState.OPEN, CircuitState.HALF_OPEN,
        ]

    def test_rate_limiter_spends_simulated_time(self):
        store = BlobStore()
        for index in range(8):
            store.put(f"https://portal.sim/r{index}", b"a,b\n1,2\n")
        client = ResilientHttpClient(
            HttpClient(store),
            rate_limit=RateLimitConfig(rate=1.0, capacity=2.0),
        )
        results = [
            client.fetch(f"https://portal.sim/r{index}") for index in range(8)
        ]
        assert all(result.ok for result in results)
        # 2 burst tokens, then 1 request per simulated second.
        assert client.clock.now() == pytest.approx(6.0)

    def test_no_wall_clock_or_unseeded_randomness_in_layer(self):
        # The acceptance criteria forbid time.time()/random.random() in
        # the resilience layer: all timing must run on the simulated
        # clock and all jitter on seeded RNGs.
        package = (
            pathlib.Path(__file__).resolve().parents[1]
            / "src" / "repro" / "resilience"
        )
        forbidden = (
            "time.time(", "time.sleep(", "perf_counter", "monotonic(",
            "datetime.now", "random.random()", "import time",
        )
        for source_file in sorted(package.glob("*.py")):
            text = source_file.read_text(encoding="utf-8")
            for needle in forbidden:
                assert needle not in text, (
                    f"{source_file.name} uses forbidden {needle!r}"
                )


class TestCrawlJournal:
    def entry(self, resource_id="r1", payload=b"a,b\n1,2\n"):
        return JournalEntry(
            resource_id=resource_id,
            url=f"https://portal.sim/{resource_id}",
            outcome="READABLE",
            attempts=2,
            recovered=True,
            circuit_skipped=False,
            truncated=False,
            waited=1.25,
            payload=payload,
        )

    def test_roundtrip_through_json(self):
        entry = self.entry()
        assert JournalEntry.from_json(entry.to_json()) == entry

    def test_entry_without_payload_roundtrips(self):
        entry = self.entry(payload=None)
        assert JournalEntry.from_json(entry.to_json()) == entry

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CrawlJournal(path) as journal:
            journal.record(self.entry("r1"))
            journal.record(self.entry("r2", payload=None))
        reloaded = CrawlJournal(path)
        assert len(reloaded) == 2
        assert "r1" in reloaded and "r2" in reloaded
        assert reloaded.get("r1").payload == b"a,b\n1,2\n"
        assert reloaded.get("missing") is None

    def test_entries_survive_partial_trailing_write(self, tmp_path):
        # A process killed mid-write leaves a torn last line; the
        # journal still loads every complete entry before it, and the
        # torn resource is simply re-fetched on resume.
        path = tmp_path / "journal.jsonl"
        with CrawlJournal(path) as journal:
            journal.record(self.entry("r1"))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"resource_id": "r2", "trunc')
        reloaded = CrawlJournal(path)
        assert len(reloaded) == 1
        assert "r1" in reloaded and "r2" not in reloaded
