"""Tests for the repro.profiling analyses (§3, §4.1)."""

import pytest

from repro.profiling import (
    growth_curve,
    metadata_stats,
    null_stats,
    portal_size_stats,
    shape_distribution,
    size_percentile_curve,
    table_size_stats,
    uniqueness_stats,
)


class TestPortalSizes:
    def test_counts_consistent(self, study):
        for portal in study:
            stats = portal_size_stats(
                portal.generated.portal, portal.report, portal.generated.store
            )
            assert stats.readable_tables == len(portal.report.tables)
            assert stats.downloadable_tables >= stats.readable_tables
            assert stats.total_tables >= stats.downloadable_tables
            assert stats.total_size_bytes >= stats.largest_table_bytes

    def test_compression_ratio_in_plausible_band(self, study):
        # The paper reports ~1:5 average compression on OGDP CSVs.
        for portal in study:
            stats = portal_size_stats(
                portal.generated.portal, portal.report, portal.generated.store
            )
            assert 2.0 < stats.compression_ratio < 15.0

    def test_percentile_curve_monotone(self, study):
        for portal in study:
            points = size_percentile_curve(portal.report)
            cutoffs = [p.cutoff_bytes for p in points]
            cumulative = [p.cumulative_bytes for p in points]
            assert cutoffs == sorted(cutoffs)
            assert cumulative == sorted(cumulative)

    def test_top_decile_dominates(self, study):
        # Figure 1's headline: most bytes live in the largest tables.
        portal = study.portal("US")
        points = size_percentile_curve(portal.report, step=10)
        total = points[-1].cumulative_bytes
        below_p90 = points[-2].cumulative_bytes
        assert below_p90 < 0.75 * total


class TestTableSizes:
    def test_stats_ordering(self, study):
        for portal in study:
            stats = table_size_stats(portal.report)
            assert stats.median_columns <= stats.avg_columns * 2
            assert stats.max_rows >= stats.median_rows
            assert stats.max_columns >= stats.median_columns

    def test_us_has_long_tables(self, study):
        # At full scale US has the largest median; at test scale the
        # ordering is noisy, so require US in the top two.
        rows = {
            p.code: table_size_stats(p.report).median_rows for p in study
        }
        assert rows["US"] >= sorted(rows.values())[-2]

    def test_sg_narrowest(self, study):
        cols = {
            p.code: table_size_stats(p.report).median_columns for p in study
        }
        assert cols["SG"] == min(cols.values())

    def test_shape_distribution_sums(self, study):
        for portal in study:
            dist = shape_distribution(portal.report)
            assert sum(dist.row_counts) == len(portal.report.tables)
            assert sum(dist.column_counts) == len(portal.report.tables)


class TestNulls:
    def test_histogram_total(self, study):
        for portal in study:
            stats = null_stats(portal.report)
            assert sum(stats.column_ratio_histogram) == stats.total_columns

    def test_orderings(self, study):
        for portal in study:
            stats = null_stats(portal.report)
            assert stats.columns_entirely_null <= stats.columns_half_empty
            assert stats.columns_half_empty <= stats.columns_with_nulls

    def test_sg_cleanest(self, study):
        fractions = {
            p.code: null_stats(p.report).frac_columns_with_nulls for p in study
        }
        assert fractions["SG"] == min(fractions.values())
        assert fractions["SG"] < 0.15

    def test_non_sg_nulls_prevalent(self, study):
        for code in ("CA", "UK", "US"):
            stats = null_stats(study.portal(code).report)
            assert stats.frac_columns_with_nulls > 0.3


class TestMetadata:
    def test_fractions_sum_to_one(self, study):
        for portal in study:
            stats = metadata_stats(portal.generated.portal, seed=1)
            total = (
                stats.structured + stats.unstructured
                + stats.outside_portal + stats.lacking
            )
            assert total == pytest.approx(1.0)

    def test_sg_structured(self, study):
        stats = metadata_stats(study.portal("SG").generated.portal, seed=1)
        assert stats.structured > 0.9

    def test_us_never_structured(self, study):
        stats = metadata_stats(study.portal("US").generated.portal, seed=1)
        assert stats.structured == 0.0

    def test_sample_capped(self, study):
        stats = metadata_stats(
            study.portal("CA").generated.portal, sample_size=10, seed=1
        )
        assert stats.sample_size == 10

    def test_deterministic_given_seed(self, study):
        portal = study.portal("CA").generated.portal
        assert metadata_stats(portal, seed=3) == metadata_stats(portal, seed=3)


class TestUniqueness:
    def test_group_sizes_add_up(self, study):
        for portal in study:
            stats = uniqueness_stats(portal.report)
            assert (
                stats.text.num_columns + stats.number.num_columns
                == stats.all.num_columns
            )

    def test_scores_bounded(self, study):
        for portal in study:
            stats = uniqueness_stats(portal.report)
            assert 0.0 <= stats.all.avg_score <= 1.0
            assert 0.0 <= stats.frac_score_below_0_1 <= 1.0

    def test_median_unique_far_below_median_rows(self, study):
        # The paper's headline repetition finding.
        for code in ("CA", "UK", "US"):
            portal = study.portal(code)
            uniq = uniqueness_stats(portal.report)
            rows = table_size_stats(portal.report)
            assert uniq.all.median_unique < rows.median_rows


class TestGrowth:
    def test_cumulative_monotone(self, study):
        for portal in study:
            curve = growth_curve(portal.generated.portal, portal.report)
            assert curve.cumulative_bytes == sorted(curve.cumulative_bytes)
            assert len(curve.years) == len(curve.cumulative_bytes)

    def test_uk_smooth_others_steplike(self, study):
        shapes = {
            p.code: growth_curve(p.generated.portal, p.report).is_steplike
            for p in study
        }
        assert not shapes["UK"]
        assert shapes["CA"] and shapes["US"]
