"""Smoke tests: every example script must run end-to-end.

Each example builds its own small study, so these are the slowest tests
in the suite — but they are exactly what keeps the README's commands
honest.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"

EXAMPLES = [
    ("quickstart.py", []),
    ("portal_report.py", ["SG"]),
    ("normalization_explorer.py", []),
    ("join_discovery.py", []),
    ("benchmark_export.py", []),
    ("data_lake_search.py", ["fisheries"]),
]


@pytest.mark.parametrize(
    "script,args", EXAMPLES, ids=[name for name, _ in EXAMPLES]
)
def test_example_runs(script, args, tmp_path):
    # The subprocess does not inherit pytest's import path, so ``src``
    # must be put on PYTHONPATH explicitly (prepended, in case the
    # caller's PYTHONPATH points at another checkout).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # exports (ground_truth/) land in a temp dir
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} printed nothing"


def test_examples_list_is_complete():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == {name for name, _ in EXAMPLES}
