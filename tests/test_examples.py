"""Smoke tests: every example script must run end-to-end.

Each example builds its own small study, so these are the slowest tests
in the suite — but they are exactly what keeps the README's commands
honest.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"

EXAMPLES = [
    ("quickstart.py", []),
    ("portal_report.py", ["SG"]),
    ("normalization_explorer.py", []),
    ("join_discovery.py", []),
    ("benchmark_export.py", []),
    ("data_lake_search.py", ["fisheries"]),
]


@pytest.mark.parametrize(
    "script,args", EXAMPLES, ids=[name for name, _ in EXAMPLES]
)
def test_example_runs(script, args, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # exports (ground_truth/) land in a temp dir
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} printed nothing"


def test_examples_list_is_complete():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == {name for name, _ in EXAMPLES}
