"""Tests for the usefulness-signal filter (§5.3's takeaway)."""

from repro.joinability import (
    JoinLabel,
    KEY_KEY,
    NONKEY_NONKEY,
    SemanticType,
    SignalWeights,
    evaluate_signals,
    predict_useful,
    usefulness_score,
)
from repro.joinability.labeling import LabeledPair
from repro.joinability.pairs import JoinablePair


def labeled(
    label=JoinLabel.USEFUL,
    same_dataset=True,
    key_combo=KEY_KEY,
    semantic=SemanticType.CATEGORICAL,
    expansion=1.0,
):
    return LabeledPair(
        pair=JoinablePair(0, 1, 1.0, 10),
        label=label,
        pattern="p",
        same_dataset=same_dataset,
        key_combo=key_combo,
        semantic_type=semantic,
        size_bucket="10-100",
        expansion_ratio=expansion,
    )


class TestScoring:
    def test_best_case_scores_high(self):
        pair = labeled()
        assert predict_useful(pair)
        assert usefulness_score(pair) >= 5.0

    def test_worst_case_scores_low(self):
        pair = labeled(
            same_dataset=False,
            key_combo=NONKEY_NONKEY,
            semantic=SemanticType.INCREMENTAL_INTEGER,
            expansion=50.0,
        )
        assert not predict_useful(pair)
        assert usefulness_score(pair) == 0.0

    def test_each_signal_contributes(self):
        base = usefulness_score(
            labeled(same_dataset=False, key_combo=NONKEY_NONKEY,
                    semantic=SemanticType.INCREMENTAL_INTEGER, expansion=10.0)
        )
        with_dataset = usefulness_score(
            labeled(same_dataset=True, key_combo=NONKEY_NONKEY,
                    semantic=SemanticType.INCREMENTAL_INTEGER, expansion=10.0)
        )
        assert with_dataset > base

    def test_custom_weights(self):
        weights = SignalWeights(same_dataset=10.0, threshold=9.0)
        assert predict_useful(
            labeled(same_dataset=True, key_combo=NONKEY_NONKEY,
                    semantic=SemanticType.INCREMENTAL_INTEGER,
                    expansion=99.0),
            weights,
        )


class TestEvaluation:
    def test_metrics(self):
        sample = [
            labeled(JoinLabel.USEFUL),                       # predicted, useful
            labeled(JoinLabel.U_ACC),                        # predicted, not
            labeled(JoinLabel.USEFUL, same_dataset=False,
                    key_combo=NONKEY_NONKEY,
                    semantic=SemanticType.INCREMENTAL_INTEGER,
                    expansion=9.0),                          # missed useful
            labeled(JoinLabel.U_ACC, same_dataset=False,
                    key_combo=NONKEY_NONKEY,
                    semantic=SemanticType.INCREMENTAL_INTEGER,
                    expansion=9.0),                          # true negative
        ]
        evaluation = evaluate_signals(sample)
        assert evaluation.total == 4
        assert evaluation.predicted_useful == 2
        assert evaluation.actually_useful == 2
        assert evaluation.true_positives == 1
        assert evaluation.precision == 0.5
        assert evaluation.recall == 0.5
        assert evaluation.baseline_precision == 0.5

    def test_empty_sample(self):
        evaluation = evaluate_signals([])
        assert evaluation.precision == 0.0
        assert evaluation.recall == 0.0

    def test_filter_beats_baseline_on_corpus(self, study):
        """The paper's proposed signals must outperform suggesting every
        high-overlap pair, which is the whole point of §5.3."""
        sample = []
        for code in ("CA", "UK", "US"):
            sample.extend(study.portal(code).labeled_join_sample())
        evaluation = evaluate_signals(sample)
        assert evaluation.total > 50
        assert evaluation.precision > evaluation.baseline_precision
