"""End-to-end fault-injection studies: poison corpora, quarantine,
and journal-based resume of the analysis stages."""

import pytest

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.experiments.registry import run_experiment
from repro.report.render import render_degradation_appendix
from repro.resilience import StageStatus

SCALE = 0.05
SEED = 7


def build(tmp_path, **overrides):
    config = StudyConfig(scale=SCALE, seed=SEED, **overrides)
    return Study.build(config)


@pytest.fixture(scope="module")
def poison_study(tmp_path_factory):
    """One guarded poison study shared by the e2e assertions below."""
    tmp_path = tmp_path_factory.mktemp("poison")
    study = Study.build(
        StudyConfig(
            scale=SCALE,
            seed=SEED,
            poison_rate=0.25,
            stage_budget=40_000,
            quarantine_dir=str(tmp_path / "quarantine"),
        )
    )
    yield study, tmp_path
    study.close()


class TestPoisonEndToEnd:
    def test_experiments_complete(self, poison_study):
        study, _ = poison_study
        for experiment_id in ("table05", "table06", "table11"):
            result = run_experiment(experiment_id, study)
            assert result.text.strip()

    def test_quarantined_tables_reported(self, poison_study):
        study, tmp_path = poison_study
        # Force the analyses that exercise the guard.
        run_experiment("table05", study)
        quarantined = [
            outcome
            for portal in study
            for outcome in portal.executor.outcomes
            if outcome.status is StageStatus.QUARANTINED
        ]
        assert quarantined, "poison corpus produced no quarantined tables"
        # Quarantine records landed on disk, named portal-table.
        files = sorted((tmp_path / "quarantine").glob("*.json"))
        assert files
        appendix = render_degradation_appendix(study)
        assert appendix is not None
        assert "quarantined" in appendix

    def test_poison_tables_excluded_downstream(self, poison_study):
        study, _ = poison_study
        for portal in study:
            quarantined = portal.executor.quarantined
            kept = {t.resource_id for t in portal.screened_tables()}
            assert not (quarantined & kept)


class TestResume:
    def config(self, tmp_path, resume=True):
        return StudyConfig(
            scale=SCALE,
            seed=SEED,
            poison_rate=0.25,
            stage_budget=40_000,
            checkpoint_dir=str(tmp_path),
            resume=resume,
        )

    def run_once(self, tmp_path, resume=True):
        study = Study.build(self.config(tmp_path, resume=resume))
        try:
            text = run_experiment("table05", study).text
            replayed = sum(
                1
                for portal in study
                for o in portal.executor.outcomes
                if o.replayed
            )
            return text, replayed
        finally:
            study.close()

    def test_kill_then_rerun_is_byte_identical(self, tmp_path):
        first, replayed_first = self.run_once(tmp_path)
        assert replayed_first == 0

        # Simulate a mid-write kill: chop the last journal line in two,
        # losing one completed unit and leaving a torn trailing line.
        journal = sorted(tmp_path.glob("study-*.jsonl"))[0]
        text = journal.read_text(encoding="utf-8")
        journal.write_text(text[: len(text) - 40], encoding="utf-8")

        second, replayed_second = self.run_once(tmp_path)
        assert second == first
        assert replayed_second > 0

    def test_no_resume_discards_study_journals(self, tmp_path):
        first, _ = self.run_once(tmp_path)
        fresh, replayed = self.run_once(tmp_path, resume=False)
        assert replayed == 0
        assert fresh == first


class TestGuardedWithoutBudget:
    def test_quarantine_dir_alone_runs_clean(self, tmp_path):
        """Crash containment without a budget: every stage is OK and the
        report needs no appendix."""
        study = build(tmp_path, quarantine_dir=str(tmp_path / "q"))
        try:
            run_experiment("table05", study)
            run_experiment("table06", study)
            for portal in study:
                assert portal.executor is not None
                counts = portal.executor.status_counts()
                assert counts[StageStatus.OK] == sum(counts.values())
            assert render_degradation_appendix(study) is None
        finally:
            study.close()

    def test_unguarded_study_has_no_executor(self, tmp_path):
        study = build(tmp_path)
        try:
            for portal in study:
                assert portal.executor is None
        finally:
            study.close()
