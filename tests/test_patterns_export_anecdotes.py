"""Tests for pattern taxonomy, ground-truth export, and anecdotes."""

import pytest

from repro.dataframe import read_csv
from repro.experiments.anecdotes import all_anecdotes
from repro.experiments.export import (
    export_ground_truth,
    labeled_join_pairs_table,
    labeled_union_pairs_table,
)
from repro.joinability import JoinLabel
from repro.joinability.patterns import (
    JoinPattern,
    classify_pattern,
    pattern_frequencies,
    render_pattern_summary,
)


class TestPatternTaxonomy:
    def test_every_oracle_pattern_mapped(self, study):
        for code in ("CA", "UK", "US"):
            for labeled in study.portal(code).labeled_join_sample():
                assert isinstance(classify_pattern(labeled), JoinPattern)

    def test_frequencies_partition_by_label(self, study):
        sample = study.portal("UK").labeled_join_sample()
        frequencies = pattern_frequencies(sample)
        useful = sum(frequencies.useful.values())
        accidental = sum(frequencies.accidental.values())
        assert useful + accidental == len(sample)
        assert useful == sum(
            1 for p in sample if p.label is JoinLabel.USEFUL
        )

    def test_unrelated_common_domain_dominates_accidental(self, study):
        pooled = []
        for code in ("CA", "UK", "US"):
            pooled.extend(study.portal(code).labeled_join_sample())
        frequencies = pattern_frequencies(pooled)
        # The paper's "most prevalent" accidental pattern.
        dominant = frequencies.dominant_accidental
        assert dominant in (
            JoinPattern.UNRELATED_COMMON_DOMAIN,
            JoinPattern.SEMI_NORMALIZED_NONKEY,
            JoinPattern.TRANSACTION_TABLES,
        )

    def test_render(self, study):
        sample = study.portal("CA").labeled_join_sample()
        text = render_pattern_summary(pattern_frequencies(sample))
        assert "useful join patterns:" in text
        assert "accidental join patterns:" in text


class TestGroundTruthExport:
    def test_join_pairs_table_schema(self, study):
        table = labeled_join_pairs_table(study)
        assert table.num_rows > 50
        assert "jaccard" in table.column_names
        assert "SG" not in set(table.column("portal").values)
        labels = set(table.column("label").values)
        assert labels <= {"U-Acc", "R-Acc", "useful"}

    def test_union_pairs_table(self, study):
        table = labeled_union_pairs_table(study)
        assert table.num_rows > 20
        assert set(table.column("portal").values) <= {"SG", "CA", "UK", "US"}

    def test_export_roundtrip(self, study, tmp_path):
        written = export_ground_truth(study, tmp_path)
        assert set(written) == {
            "labeled_join_pairs", "labeled_union_pairs",
        }
        for path in written.values():
            assert path.exists()
            table = read_csv(path.read_text(encoding="utf-8"))
            assert table.num_rows > 0

    def test_export_deterministic(self, study, tmp_path):
        first = export_ground_truth(study, tmp_path / "a")
        second = export_ground_truth(study, tmp_path / "b")
        for name in first:
            assert (
                first[name].read_text() == second[name].read_text()
            )


class TestAnecdotes:
    @pytest.fixture(scope="class")
    def anecdotes(self, study):
        return {
            code: all_anecdotes(study.portal(code))
            for code in ("CA", "UK", "US")
        }

    def test_four_per_portal(self, anecdotes):
        for items in anecdotes.values():
            assert [a.number for a in items] == [1, 2, 3, 4]

    def test_anecdote1_always_found(self, anecdotes):
        for items in anecdotes.values():
            first = items[0]
            assert first.found
            assert "joins" in first.text
            assert "uniqueness" in first.text

    def test_anecdote4_found_somewhere(self, anecdotes):
        # Accidental key-key pairs (the incremental-integer trap) must
        # exist in at least one portal's sample.
        assert any(items[3].found for items in anecdotes.values())

    def test_descriptions_are_printable(self, anecdotes):
        for items in anecdotes.values():
            for anecdote in items:
                assert anecdote.text.strip()
                assert anecdote.title
