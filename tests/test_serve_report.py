"""Tests for the serving report (repro.obs.servereport + CLI).

Runs the smoke mix (which must verdict OK against the harness SLOs)
and the storm mix (9 of every 10 guarded backend calls failing, which
must exhaust the error budget) once each, with a trace sink, and judges
the traces through the report pipeline and the ``serve-report`` CLI.
"""

import json
from types import SimpleNamespace

import pytest

from repro.experiments.cli import main
from repro.obs.servereport import (
    red_tables,
    render_serve_report,
    request_spans,
    resolve_spec,
    serve_report_json,
)
from repro.obs.slo import KIND_AVAILABILITY, Objective, SloSpec, default_slos
from repro.obs.stats import TraceData, load_trace
from repro.serve.loadgen import MIXES, run_load


@pytest.fixture(scope="module")
def smoke(study, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-report") / "smoke.jsonl"
    report = run_load(study, MIXES["smoke"](), trace_out=path)
    return SimpleNamespace(
        path=path, report=report, trace=load_trace(path)
    )


@pytest.fixture(scope="module")
def storm(study, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-report") / "storm.jsonl"
    report = run_load(study, MIXES["storm"](), trace_out=path)
    return SimpleNamespace(
        path=path, report=report, trace=load_trace(path)
    )


class TestRedTables:
    def test_per_endpoint_counts_and_percentiles(self, smoke):
        tables = red_tables(request_spans(smoke.trace))
        assert tables
        for endpoint, entry in tables.items():
            assert endpoint not in ("healthz", "statz")
            assert entry["requests"] == (
                entry["ok"] + entry["degraded"]
                + entry["shed"] + entry["error"]
            )
            assert entry["errors"] == entry["shed"] + entry["error"]
            assert 0.0 <= entry["error_rate"] <= 1.0
            assert entry["ops"]["p50"] <= entry["ops"]["p99"]
            assert entry["ops"]["p99"] <= entry["ops"]["max"]

    def test_totals_match_the_load_report(self, smoke):
        tables = red_tables(request_spans(smoke.trace))
        per_endpoint = smoke.report["per_endpoint"]
        for endpoint, entry in tables.items():
            assert entry["requests"] == per_endpoint[endpoint]["requests"]


class TestVerdicts:
    def test_smoke_mix_meets_its_slos(self, smoke):
        doc = serve_report_json(smoke.trace)
        assert doc["slo"]["verdict"] == "OK"
        assert doc["slo_source"] == "trace header"
        # The replayed verdict matches the live monitor's.
        assert doc["slo"]["verdict"] == smoke.report["slo"]["verdict"]

    def test_storm_mix_exhausts_the_error_budget(self, storm):
        doc = serve_report_json(storm.trace)
        assert doc["slo"]["verdict"] == "EXHAUSTED"
        availability = doc["slo"]["objectives"]["availability"]
        assert availability["budget_used"] > 1.0
        assert doc["slo"]["verdict"] == storm.report["slo"]["verdict"]

    def test_storm_burns_where_smoke_does_not(self, smoke, storm):
        smoke_doc = serve_report_json(smoke.trace)
        storm_doc = serve_report_json(storm.trace)
        smoke_avail = smoke_doc["slo"]["objectives"]["availability"]
        storm_avail = storm_doc["slo"]["objectives"]["availability"]
        assert storm_avail["bad_fraction"] > smoke_avail["bad_fraction"]


class TestSpecResolution:
    def test_explicit_file_beats_trace_header(self, smoke, tmp_path):
        # An absurdly strict availability target: any shed at all
        # exhausts it, so the override visibly changes the verdict.
        strict = SloSpec(
            window=0.5,
            objectives=(
                Objective(
                    "availability", KIND_AVAILABILITY, target=0.999999
                ),
            ),
        )
        path = tmp_path / "strict.json"
        path.write_text(json.dumps(strict.as_json()))
        spec, source = resolve_spec(smoke.trace, path)
        assert spec == strict
        assert source == str(path)
        doc = serve_report_json(smoke.trace, slo_path=path)
        assert doc["slo"]["verdict"] == "EXHAUSTED"

    def test_defaults_when_header_has_no_spec(self):
        bare = TraceData(
            path="x", header={}, spans=[], metrics={}, footer=None,
            problems=[],
        )
        spec, source = resolve_spec(bare)
        assert spec == default_slos()
        assert source == "defaults"


class TestRendering:
    def test_report_shows_red_slo_and_exemplars(self, smoke):
        text = render_serve_report(smoke.trace)
        assert "RED by endpoint" in text
        assert "SLO verdict: OK" in text
        assert "error-budget burn by window" in text
        assert "exemplars (" in text
        assert "-> admission" in text

    def test_storm_report_flags_burning_windows(self, storm):
        text = render_serve_report(storm.trace)
        assert "SLO verdict: EXHAUSTED" in text
        # At least one window crosses its burn threshold and is marked.
        assert "x!" in text.replace("x !", "x!") or "!" in text

    def test_exemplars_capped_by_top(self, smoke):
        doc = serve_report_json(smoke.trace, top=3)
        assert len(doc["exemplars"]) == 3
        ops = [tree["ops"] for tree in doc["exemplars"]]
        assert ops == sorted(ops, reverse=True)


class TestCli:
    def test_parser(self, tmp_path):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve-report", "trace.jsonl",
                "--slo", str(tmp_path / "slo.json"),
                "--json", "--top", "4", "--fail-on-exhausted",
            ]
        )
        assert args.command == "serve-report"
        assert args.trace == "trace.jsonl"
        assert args.as_json is True
        assert args.top == 4
        assert args.fail_on_exhausted is True

    def test_missing_trace_exits_2(self, capsys, tmp_path):
        code = main(["serve-report", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "trace-missing" in capsys.readouterr().err

    def test_renders_smoke_trace(self, capsys, smoke):
        code = main(["-q", "serve-report", str(smoke.path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "RED by endpoint" in out
        assert "SLO verdict: OK" in out

    def test_json_output_parses(self, capsys, smoke):
        code = main(["-q", "serve-report", str(smoke.path), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["slo"]["verdict"] == "OK"
        assert doc["requests"] > 0

    def test_fail_on_exhausted_gates_the_storm(self, capsys, storm):
        code = main(
            ["-q", "serve-report", str(storm.path), "--fail-on-exhausted"]
        )
        assert code == 1
        assert "slo-exhausted" in capsys.readouterr().err

    def test_lenient_override_clears_the_gate(self, capsys, storm, tmp_path):
        lenient = SloSpec(
            window=0.5,
            objectives=(
                Objective("availability", KIND_AVAILABILITY, target=0.0),
            ),
        )
        path = tmp_path / "lenient.json"
        path.write_text(json.dumps(lenient.as_json()))
        code = main(
            [
                "-q", "serve-report", str(storm.path),
                "--slo", str(path), "--fail-on-exhausted",
            ]
        )
        assert code == 0
        assert "SLO verdict: OK" in capsys.readouterr().out

    def test_unreadable_slo_spec_exits_2(self, capsys, smoke, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"objectives\": []}")
        code = main(["-q", "serve-report", str(smoke.path), "--slo", str(bad)])
        assert code == 2
        assert "slo-spec-unreadable" in capsys.readouterr().err
