"""Tests for the persistent join index artifact (repro.search.indexstore)."""

from __future__ import annotations

import json

from repro.core.config import StudyConfig
from repro.joinability.pairs import JoinablePair
from repro.search.indexstore import (
    HIT,
    INDEX_VERSION,
    MISS,
    STALE,
    JoinIndexStore,
    StoredJoinIndex,
    index_fingerprint,
)

CONFIG = StudyConfig(scale=0.08, seed=2)


def make_index(fingerprint, pairs=None):
    return StoredJoinIndex(
        portal_code="CA",
        threshold=0.9,
        fingerprint=fingerprint,
        pairs=tuple(
            pairs
            if pairs is not None
            else [
                JoinablePair(left=0, right=3, jaccard=18 / 20, overlap=18),
                JoinablePair(left=1, right=2, jaccard=1.0, overlap=40),
            ]
        ),
        column_check=(20, 40, 40, 18),
        counters={"pairs": 2},
    )


class TestFingerprint:
    def test_covers_corpus_and_geometry(self):
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        assert fp["version"] == INDEX_VERSION
        assert fp["portal"] == "CA"
        assert fp["threshold"] == 0.9
        assert fp["seed"] == 2
        assert fp["scale"] == 0.08
        assert fp["min_unique"] == 10
        assert fp["num_perm"] == 64
        assert fp["bands"] == 32

    def test_differs_across_seeds(self):
        other = StudyConfig(scale=0.08, seed=3)
        assert index_fingerprint(CONFIG, "CA", 0.9) != index_fingerprint(
            other, "CA", 0.9
        )


class TestRoundTrip:
    def test_save_then_load_hit(self, tmp_path):
        store = JoinIndexStore(tmp_path / "idx")
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        saved = make_index(fp)
        store.save(saved)
        loaded = store.load("CA", 0.9, fp)
        assert loaded.status == HIT
        assert loaded.index.pairs == saved.pairs
        assert loaded.index.column_check == saved.column_check
        # Floats survive the JSON round trip exactly (repr round-trip).
        assert loaded.index.pairs[0].jaccard == 18 / 20

    def test_save_is_atomic(self, tmp_path):
        store = JoinIndexStore(tmp_path)
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        path = store.save(make_index(fp))
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_overwrite_replaces(self, tmp_path):
        store = JoinIndexStore(tmp_path)
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        store.save(make_index(fp))
        store.save(make_index(fp, pairs=[]))
        loaded = store.load("CA", 0.9, fp)
        assert loaded.status == HIT
        assert loaded.index.pairs == ()


class TestLoadFailures:
    def test_absent_is_miss(self, tmp_path):
        store = JoinIndexStore(tmp_path)
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        result = store.load("CA", 0.9, fp)
        assert result.status == MISS
        assert result.reason == "absent"

    def test_fingerprint_mismatch_is_stale(self, tmp_path):
        store = JoinIndexStore(tmp_path)
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        store.save(make_index(fp))
        other = index_fingerprint(StudyConfig(scale=0.08, seed=9), "CA", 0.9)
        assert store.load("CA", 0.9, other).status == STALE

    def test_version_bump_is_stale(self, tmp_path):
        store = JoinIndexStore(tmp_path)
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        path = store.save(make_index(fp))
        document = json.loads(path.read_text(encoding="utf-8"))
        document["version"] = INDEX_VERSION + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        result = store.load("CA", 0.9, fp)
        assert result.status == STALE
        assert "version" in result.reason

    def test_torn_file_is_miss(self, tmp_path):
        store = JoinIndexStore(tmp_path)
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        path = store.save(make_index(fp))
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        result = store.load("CA", 0.9, fp)
        assert result.status == MISS
        assert result.reason.startswith("torn")

    def test_wrong_shape_is_miss(self, tmp_path):
        store = JoinIndexStore(tmp_path)
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        path = store.path("CA", 0.9)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "version": INDEX_VERSION,
                    "fingerprint": fp,
                    "pairs": [[0]],  # malformed row
                    "column_check": [1],
                }
            ),
            encoding="utf-8",
        )
        assert store.load("CA", 0.9, fp).status == MISS

    def test_torn_file_salvaged_by_resave(self, tmp_path):
        """The self-healing cycle: torn -> miss -> rebuild -> hit."""
        store = JoinIndexStore(tmp_path)
        fp = index_fingerprint(CONFIG, "CA", 0.9)
        path = store.save(make_index(fp))
        path.write_text("{\"version\": 1, \"trunc", encoding="utf-8")
        assert store.load("CA", 0.9, fp).status == MISS
        store.save(make_index(fp))
        assert store.load("CA", 0.9, fp).status == HIT
