"""Tests for the real-socket HTTP front end (repro.serve.httpd)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.httpd import WallClock, make_server


@pytest.fixture(scope="module")
def server(study):
    server = make_server(study, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get(server, path, headers=None):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


class TestHttpServer:
    def test_healthz(self, server):
        status, _, payload = get(server, "/healthz")
        assert status == 200
        body = json.loads(payload)
        assert body["status"] == "ok"
        assert body["packages"] > 0

    def test_package_list_round_trip(self, server):
        status, headers, payload = get(
            server, "/api/3/action/package_list?limit=5"
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        body = json.loads(payload)
        assert body["success"] is True
        assert len(body["result"]["packages"]) == 5

    def test_unknown_package_is_json_404(self, server):
        status, _, payload = get(
            server, "/api/3/action/package_show?id=SG:ghost"
        )
        assert status == 404
        body = json.loads(payload)
        assert body["success"] is False
        assert body["error"]["code"] == 404

    def test_search_etag_then_304(self, server):
        path = "/lake_search?q=fisheries&limit=3"
        headers = {"X-Client-Id": "etag-tester"}
        status, first_headers, _ = get(server, path, headers)
        assert status == 200
        etag = first_headers["ETag"]
        status, _, payload = get(
            server, path, headers | {"If-None-Match": etag}
        )
        assert status == 304
        assert payload == b""

    def test_statz_counts_requests(self, server):
        status, _, payload = get(server, "/statz?raw=1")
        assert status == 200
        body = json.loads(payload)
        assert body["metrics"]["serve.requests"]["value"] > 0

    def test_statz_default_shape_has_slo(self, server):
        status, _, payload = get(server, "/statz")
        assert status == 200
        body = json.loads(payload)
        assert body["slo"]["verdict"] in ("OK", "BURNING", "EXHAUSTED")
        assert "endpoints" in body

    def test_observability_headers(self, server):
        status, headers, _ = get(server, "/api/3/action/package_list")
        assert status == 200
        assert headers["X-Ogdp-Outcome"] == "ok"
        assert int(headers["X-Ogdp-Ops"]) >= 1


class TestWallClock:
    def test_monotonic_and_interface_parity(self):
        clock = WallClock()
        first = clock.now()
        clock.sleep(0.01)
        assert clock.now() >= first + 0.005
        clock.advance_to(10_000.0)  # a no-op, never a time jump
        assert clock.now() < 10_000.0
