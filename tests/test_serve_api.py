"""Tests for the CKAN-shaped query API layer (repro.serve.api)."""

import json

import pytest

from repro.portal.ckan import CkanApiError
from repro.resilience.budget import WorkMeter
from repro.search.lake import DataLake
from repro.serve.api import (
    ApiError,
    QueryApi,
    Request,
    Response,
    compute_etag,
    error_body,
    map_exception,
    success_body,
)


@pytest.fixture(scope="module")
def api(study):
    return QueryApi(study, DataLake(study))


def req(path, **params):
    return Request(path, {k: str(v) for k, v in params.items()})


def unlimited():
    return WorkMeter(None)


class TestPackageList:
    def test_lists_namespaced_ids(self, api):
        result = api.package_list(req("/api/3/action/package_list"), unlimited())
        assert result["count"] == api.package_count
        assert result["packages"]
        for package_id in result["packages"]:
            code, _, dataset_id = package_id.partition(":")
            assert code in api.portal_codes
            assert dataset_id

    def test_pagination_windows_are_disjoint_and_ordered(self, api):
        first = api.package_list(
            req("/api/3/action/package_list", limit=5), unlimited()
        )
        second = api.package_list(
            req("/api/3/action/package_list", limit=5, offset=5), unlimited()
        )
        assert len(first["packages"]) == 5
        assert not set(first["packages"]) & set(second["packages"])
        assert first["packages"] + second["packages"] == sorted(
            first["packages"] + second["packages"]
        )

    def test_limit_is_capped(self, api):
        result = api.package_list(
            req("/api/3/action/package_list", limit=10_000), unlimited()
        )
        assert result["limit"] == 1000

    def test_bad_limit_rejected(self, api):
        with pytest.raises(ApiError) as err:
            api.package_list(
                req("/api/3/action/package_list", limit="ten"), unlimited()
            )
        assert err.value.code == 400
        assert err.value.kind == "Validation Error"

    def test_deadline_truncates_to_partial_page(self, api):
        meter = WorkMeter(3)
        result = api.package_list(
            req("/api/3/action/package_list", limit=50), meter
        )
        assert len(result["packages"]) == 3
        assert meter.exhausted


class TestPackageShow:
    def test_known_package(self, api):
        package_id = api.package_ids[0]
        package = api.package_show(
            req("/api/3/action/package_show", id=package_id), unlimited()
        )
        assert package["id"] == package_id
        assert package["portal"] == package_id.split(":", 1)[0]
        assert package["resources"]

    def test_unknown_dataset_is_structured_404(self, api):
        code = api.portal_codes[0]
        with pytest.raises(CkanApiError) as err:
            api.package_show(
                req("/api/3/action/package_show", id=f"{code}:nope"),
                unlimited(),
            )
        assert err.value.code == 404
        assert err.value.entity == "nope"
        assert err.value.kind == "package"

    def test_unknown_portal_is_structured_404(self, api):
        with pytest.raises(CkanApiError) as err:
            api.package_show(
                req("/api/3/action/package_show", id="XX:d0001"), unlimited()
            )
        assert err.value.code == 404
        assert err.value.kind == "portal"

    def test_missing_id_param_rejected(self, api):
        with pytest.raises(ApiError) as err:
            api.package_show(req("/api/3/action/package_show"), unlimited())
        assert err.value.code == 400


class TestSearchEndpoints:
    def test_package_search_scored_packages(self, api):
        result = api.package_search(
            req("/api/3/action/package_search", q="fisheries", rows=5),
            unlimited(),
        )
        assert result["results"]
        assert len(result["results"]) <= 5
        for package in result["results"]:
            assert "score" in package and "resources" in package

    def test_package_search_start_paginates(self, api):
        all_rows = api.package_search(
            req("/api/3/action/package_search", q="fisheries", rows=4),
            unlimited(),
        )
        shifted = api.package_search(
            req(
                "/api/3/action/package_search",
                q="fisheries",
                rows=3,
                start=1,
            ),
            unlimited(),
        )
        assert [p["id"] for p in shifted["results"]] == [
            p["id"] for p in all_rows["results"][1:4]
        ]

    def test_lake_search_hits(self, api):
        result = api.lake_search(
            req("/lake_search", q="waste collection", limit=8), unlimited()
        )
        assert result["count"] == len(result["hits"])
        for hit in result["hits"]:
            assert hit["portal_code"] in api.portal_codes

    def test_empty_query_is_empty_answer(self, api):
        result = api.lake_search(req("/lake_search", q=""), unlimited())
        assert result == {"count": 0, "hits": []}


class TestSuggestionEndpoints:
    def _resource(self, study, code):
        analysis = study.portal(code).joinability()
        table_index = next(iter(analysis.table_neighbors))
        return analysis.tables[table_index].resource_id

    def test_join_suggest(self, api, study):
        resource = self._resource(study, "US")
        result = api.join_suggest(
            req("/join_suggest", portal="US", resource=resource, limit=5),
            unlimited(),
        )
        assert result["suggestions"]
        scores = [s["score"] for s in result["suggestions"]]
        assert scores == sorted(scores, reverse=True)

    def test_union_suggest(self, api, study):
        analysis = study.portal("UK").unionability()
        group = max(analysis.unionable_groups(), key=lambda g: g.size)
        resource = analysis.tables[group.table_indexes[0]].resource_id
        result = api.union_suggest(
            req("/union_suggest", portal="UK", resource=resource, limit=5),
            unlimited(),
        )
        assert result["suggestions"]

    def test_unknown_resource_is_structured_404(self, api):
        with pytest.raises(CkanApiError) as err:
            api.join_suggest(
                req("/join_suggest", portal="US", resource="nope"),
                unlimited(),
            )
        assert err.value.code == 404
        assert err.value.kind == "resource"
        assert err.value.entity == "nope"

    def test_unknown_portal_is_structured_404(self, api):
        with pytest.raises(CkanApiError) as err:
            api.union_suggest(
                req("/union_suggest", portal="XX", resource="r"), unlimited()
            )
        assert err.value.kind == "portal"

    def test_missing_params_rejected(self, api):
        with pytest.raises(ApiError) as err:
            api.join_suggest(req("/join_suggest", portal="US"), unlimited())
        assert err.value.code == 400


class TestEnvelopes:
    def test_error_body_shape(self):
        body = error_body(404, "package not found: 'x'", "Not Found Error")
        assert body == {
            "success": False,
            "error": {
                "__type": "Not Found Error",
                "code": 404,
                "message": "package not found: 'x'",
            },
        }

    def test_success_body_markers(self):
        assert success_body({"a": 1})["degraded"] is False
        degraded = success_body({}, degraded=True, stale=True)
        assert degraded["degraded"] is True and degraded["stale"] is True
        assert "stale" not in success_body({})

    def test_etag_is_deterministic_and_content_sensitive(self):
        a = compute_etag("/lake_search", {"count": 1})
        assert a == compute_etag("/lake_search", {"count": 1})
        assert a != compute_etag("/lake_search", {"count": 2})
        assert a != compute_etag("/join_suggest", {"count": 1})
        assert a.startswith('W/"')

    def test_response_bytes_are_canonical(self):
        response = Response(200, {"b": 1, "a": 2})
        assert response.to_bytes() == b'{"a": 2, "b": 1}\n'
        assert Response(304, None).to_bytes() == b""

    def test_response_headers_case_insensitive(self):
        response = Response(200, {}, {"ETag": 'W/"x"', "Retry-After": "1.5"})
        assert response.etag == 'W/"x"'
        assert response.retry_after == 1.5

    def test_request_header_case_insensitive(self):
        request = Request("/x", {}, {"If-None-Match": 'W/"y"'})
        assert request.header("if-none-match") == 'W/"y"'
        assert request.header("x-missing", "d") == "d"


class TestMapException:
    def test_ckan_error_keeps_code(self):
        mapped = map_exception(CkanApiError("d1"))
        assert mapped.code == 404
        assert "d1" in str(mapped)

    def test_key_error_maps_to_404(self):
        assert map_exception(KeyError("r9")).code == 404

    def test_api_error_passes_through(self):
        original = ApiError(400, "bad", kind="Validation Error")
        assert map_exception(original) is original

    def test_unexpected_exception_maps_to_500(self):
        mapped = map_exception(RuntimeError("boom"))
        assert mapped.code == 500
        assert mapped.kind == "Internal Server Error"
        assert "boom" in str(mapped)

    def test_error_body_is_json_serializable(self):
        mapped = map_exception(RuntimeError("boom"))
        json.dumps(error_body(mapped.code, str(mapped), mapped.kind))
