"""Unit tests for repro.dataframe.table."""

import pytest

from repro.dataframe import (
    Column,
    ColumnNotFoundError,
    DataType,
    SchemaError,
    Table,
)


def make(name="t"):
    return Table(
        name,
        [
            Column("a", [1, 2, 3, 2]),
            Column("b", ["x", "y", "z", "y"]),
            Column("c", [1.0, None, 3.0, 4.0]),
        ],
    )


class TestConstruction:
    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", [1]), Column("b", [1, 2])])

    def test_empty_table(self):
        table = Table.empty("t", ["a", "b"])
        assert table.num_rows == 0
        assert table.num_columns == 2

    def test_from_rows_pads_and_truncates(self):
        table = Table.from_rows("t", ["a", "b"], [(1,), (1, 2, 3)])
        assert table.row(0) == (1, None)
        assert table.row(1) == (1, 2)

    def test_duplicate_names_allowed_first_wins(self):
        table = Table("t", [Column("a", [1]), Column("a", [2])])
        assert table.column("a")[0] == 1


class TestAccess:
    def test_shape(self):
        table = make()
        assert table.num_rows == 4
        assert table.num_columns == 3
        assert len(table) == 4

    def test_column_by_name_and_position(self):
        table = make()
        assert table.column("b").name == "b"
        assert table.column(1).name == "b"

    def test_missing_column_raises(self):
        with pytest.raises(ColumnNotFoundError):
            make().column("nope")
        with pytest.raises(ColumnNotFoundError):
            make().column(9)

    def test_rows(self):
        table = make()
        assert table.row(0) == (1, "x", 1.0)
        assert list(table.iter_rows())[1] == (2, "y", None)

    def test_schema(self):
        assert make().schema() == (
            ("a", DataType.INTEGER),
            ("b", DataType.TEXT),
            ("c", DataType.FLOAT),
        )

    def test_equality_ignores_name(self):
        assert make("x") == make("y")

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(make())


class TestOperations:
    def test_project_order(self):
        projected = make().project(["c", "a"])
        assert projected.column_names == ("c", "a")
        assert projected.num_rows == 4

    def test_drop(self):
        dropped = make().drop(["b"])
        assert dropped.column_names == ("a", "c")

    def test_drop_missing_raises(self):
        with pytest.raises(ColumnNotFoundError):
            make().drop(["zzz"])

    def test_select(self):
        kept = make().select(lambda row: row[0] == 2)
        assert kept.num_rows == 2
        assert all(row[0] == 2 for row in kept.iter_rows())

    def test_take_and_head(self):
        table = make()
        assert table.take([3, 0]).row(0) == table.row(3)
        assert table.head(2).num_rows == 2
        assert table.head(99).num_rows == 4

    def test_distinct_keeps_first(self):
        table = Table("t", [Column("a", [1, 1, 2]), Column("b", [9, 9, 9])])
        assert table.distinct().num_rows == 2

    def test_sort_by_nulls_last(self):
        table = Table("t", [Column("a", [3, None, 1])])
        assert [r[0] for r in table.sort_by(["a"]).iter_rows()] == [1, 3, None]

    def test_sort_by_mixed_types_is_total(self):
        table = Table("t", [Column("a", ["b", 2, None, 1.5, "a", True])])
        ordered = [r[0] for r in table.sort_by(["a"]).iter_rows()]
        assert ordered == [True, 1.5, 2, "a", "b", None]

    def test_rename_columns(self):
        renamed = make().rename_columns({"a": "alpha"})
        assert renamed.column_names == ("alpha", "b", "c")

    def test_with_name(self):
        assert make().with_name("other").name == "other"


class TestPresentation:
    def test_to_text_contains_header_and_rows(self):
        text = make().to_text()
        assert "a" in text.splitlines()[0]
        assert "Waterloo" not in text

    def test_to_text_truncates(self):
        table = Table("t", [Column("a", list(range(100)))])
        text = table.to_text(max_rows=5)
        assert "95 more rows" in text
