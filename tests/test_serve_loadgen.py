"""Tests for the deterministic load harness (repro.serve.loadgen)."""

import dataclasses
import json

import pytest

from repro.serve.loadgen import (
    MIXES,
    ClientClass,
    LoadConfig,
    bench_record,
    check_invariants,
    percentile_nearest_rank,
    render_report,
    report_to_json,
    run_load,
    smoke_classes,
)

#: A small mix for per-test runs (the full smoke mix is exercised once).
TINY = LoadConfig(
    mix="tiny",
    classes=(
        ClientClass("well_behaved", count=6, requests=4, think=0.3),
        ClientClass(
            "abusive",
            count=2,
            requests=10,
            think=0.005,
            respect_retry_after=False,
        ),
        ClientClass("flaky", count=2, requests=3, think=0.2, drop_rate=0.5),
    ),
    ops_rate=800.0,
    service=MIXES["smoke"]().service,
    # Too few requests per family to trip a breaker; faults stay off
    # (the fault-storm invariant is exercised by the smoke mix).
    backend_fault_period=0,
    backend_fault_burst=0,
)


@pytest.fixture(scope="module")
def tiny_report(study):
    return run_load(study, TINY)


@pytest.fixture(scope="module")
def smoke_report(study):
    return run_load(study, MIXES["smoke"]())


class TestPercentile:
    def test_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile_nearest_rank(values, 50) == 5
        assert percentile_nearest_rank(values, 99) == 10
        assert percentile_nearest_rank(values, 100) == 10
        assert percentile_nearest_rank([7], 50) == 7
        assert percentile_nearest_rank([], 99) == 0


class TestConfig:
    def test_expected_requests(self):
        assert TINY.expected_requests == 6 * 4 + 2 * 10 + 2 * 3
        assert TINY.total_clients == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(classes=smoke_classes(), ops_rate=0.0)
        with pytest.raises(ValueError):
            LoadConfig(
                classes=smoke_classes(),
                backend_fault_period=5,
                backend_fault_burst=6,
            )
        with pytest.raises(ValueError):
            run_load(None, LoadConfig(classes=()))


class TestInvariants:
    def test_no_request_lost(self, tiny_report):
        requests = tiny_report["requests"]
        assert requests["lost"] == 0
        assert requests["terminated"] == TINY.expected_requests

    def test_outcomes_partition_terminations(self, tiny_report):
        assert (
            sum(tiny_report["outcomes"].values())
            == tiny_report["requests"]["terminated"]
        )
        for stats in tiny_report["per_class"].values():
            assert (
                stats["ok"]
                + stats["degraded"]
                + stats["shed"]
                + stats["error"]
                == stats["requests"]
            )

    def test_admission_bounds_hold(self, tiny_report):
        admission = tiny_report["admission"]
        assert admission["within_bounds"]
        assert admission["max_in_flight"] <= admission["concurrency"]
        assert admission["max_queued"] <= admission["queue_depth"]

    def test_flaky_drops_surface_as_errors(self, tiny_report):
        assert tiny_report["per_class"]["flaky"]["error"] >= 1

    def test_check_invariants_clean(self, tiny_report):
        assert check_invariants(tiny_report, TINY) == []

    def test_check_invariants_flags_lost_requests(self, tiny_report):
        broken = json.loads(report_to_json(tiny_report))
        broken["requests"]["lost"] = 3
        violations = check_invariants(broken, TINY)
        assert any("lost" in v for v in violations)

    def test_check_invariants_flags_p99_blowout(self, tiny_report):
        tight = dataclasses.replace(TINY, p99_bound_ops=0)
        violations = check_invariants(tiny_report, tight)
        assert any("p99" in v for v in violations)


class TestDeterminism:
    def test_equal_seeds_byte_identical(self, study, tiny_report):
        again = run_load(study, TINY)
        assert report_to_json(tiny_report) == report_to_json(again)

    def test_different_seed_differs(self, study, tiny_report):
        shifted = run_load(study, dataclasses.replace(TINY, seed=99))
        assert report_to_json(shifted) != report_to_json(tiny_report)
        # ...but still violates nothing.
        assert check_invariants(
            shifted, dataclasses.replace(TINY, seed=99)
        ) == []

    def test_report_json_is_sorted_and_round_trips(self, tiny_report):
        text = report_to_json(tiny_report)
        assert json.loads(text) == tiny_report
        assert text == json.dumps(
            json.loads(text), indent=2, sort_keys=True
        ) + "\n"


class TestSmokeMix:
    def test_smoke_walks_the_whole_ladder(self, smoke_report):
        config = MIXES["smoke"]()
        assert check_invariants(smoke_report, config) == []
        outcomes = smoke_report["outcomes"]
        # Every terminal state is reachable under the smoke mix.
        assert outcomes["ok"] > 0
        assert outcomes["degraded"] > 0
        assert outcomes["shed"] > 0
        assert outcomes["error"] > 0
        service = smoke_report["service"]
        assert service["breaker_opens"] >= 1
        assert service["stale_served"] >= 1
        assert smoke_report["admission"]["max_queued"] > 0

    def test_abusive_clients_shed_hardest(self, smoke_report):
        per_class = smoke_report["per_class"]
        assert (
            per_class["abusive"]["shed_rate"]
            >= per_class["well_behaved"]["shed_rate"]
        )

    def test_render_report_mentions_key_numbers(self, smoke_report):
        text = render_report(smoke_report)
        assert "lost=0" in text
        assert "well_behaved" in text
        assert "within bounds: True" in text


class TestBenchRecord:
    def test_record_shape(self, smoke_report):
        record = bench_record(
            smoke_report, scale=0.18, seed=3, seconds=1.25
        )
        assert record["experiment"] == "serve"
        assert record["clients"] == smoke_report["harness"]["clients"]
        assert record["total_ops"] == smoke_report["total_ops"]
        assert record["total_ops"] > 0
        assert record["p99_ops"] >= record["p50_ops"] >= 0
        assert 0.0 <= record["shed_rate"] <= 1.0
        json.dumps(record)  # must be JSON-safe
