"""Tests for core stats, configuration, and study orchestration."""

import pytest

from repro.core.config import DEFAULT_PORTALS, StudyConfig
from repro.core.stats import (
    format_count,
    fraction,
    geometric_buckets,
    histogram,
    mean,
    median,
    percentile,
)
from repro.core.study import Study


class TestStats:
    def test_mean_median_empty(self):
        assert mean([]) == 0.0
        assert median([]) == 0.0

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_percentile_interpolation(self):
        values = [0, 10]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 10.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_single_value(self):
        assert percentile([7], 33) == 7.0

    def test_fraction_guard(self):
        assert fraction(1, 0) == 0.0
        assert fraction(1, 4) == 0.25

    def test_histogram_buckets(self):
        counts = histogram([0.5, 1, 5, 50, 500], [1, 10, 100])
        assert counts == [2, 1, 1, 1]
        assert sum(counts) == 5

    def test_geometric_buckets(self):
        assert geometric_buckets(500) == [1.0, 10.0, 100.0]
        assert geometric_buckets(0.5) == [1.0]

    def test_format_count(self):
        assert format_count(447) == "447"
        assert format_count(25_400_000) == "25.4M"
        assert format_count(20_700) == "20.7K"
        assert format_count(4.25) == "4.25"


class TestConfig:
    def test_defaults(self):
        config = StudyConfig()
        assert config.portal_codes == DEFAULT_PORTALS
        assert config.jaccard_threshold == 0.9
        assert config.max_lhs == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(scale=0)
        with pytest.raises(ValueError):
            StudyConfig(jaccard_threshold=1.5)
        with pytest.raises(ValueError):
            StudyConfig(max_lhs=0)
        with pytest.raises(ValueError):
            StudyConfig(portal_codes=("XX",))

    def test_frozen(self):
        with pytest.raises(Exception):
            StudyConfig().scale = 2.0


class TestStudy:
    def test_builds_requested_portals_only(self):
        study = Study.build(
            StudyConfig(scale=0.08, seed=2, portal_codes=("SG",))
        )
        assert study.codes == ("SG",)
        assert study.portal("SG").code == "SG"

    def test_full_study_shape(self, study):
        assert set(study.codes) == {"SG", "CA", "UK", "US"}
        for portal in study:
            assert portal.report.readable_tables > 0

    def test_caches_are_stable(self, study):
        portal = study.portal("CA")
        assert portal.joinability() is portal.joinability()
        assert portal.unionability() is portal.unionability()
        assert portal.labeled_join_sample() is portal.labeled_join_sample()

    def test_filtered_tables_obey_paper_filter(self, study):
        for portal in study:
            for table in portal.filtered_tables():
                assert 10 <= table.num_rows <= 10_000
                assert 5 <= table.num_columns <= 20

    def test_single_key_fraction_bounds(self, study):
        for portal in study:
            assert 0.0 <= portal.single_key_fraction() <= 1.0


class TestExperimentCache:
    def test_get_study_caches(self):
        from repro.experiments import clear_cache, get_study

        clear_cache()
        a = get_study(scale=0.08, seed=2)
        b = get_study(scale=0.08, seed=2)
        assert a is b
        clear_cache()
        c = get_study(scale=0.08, seed=2)
        assert c is not a
        clear_cache()
