"""Unit tests for repro.dataframe.infer."""

import pytest

from repro.dataframe.infer import (
    infer_column_type,
    parse_cell,
    try_parse_bool,
    try_parse_float,
    try_parse_int,
    type_of_cell,
)
from repro.dataframe.types import DataType


class TestParseCell:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("42", 42),
            ("-7", -7),
            ("+3", 3),
            ("0", 0),
            ("3.14", 3.14),
            ("-0.5", -0.5),
            ("1e3", 1000.0),
            ("true", True),
            ("No", False),
            ("Ontario", "Ontario"),
            ("", None),
            ("n/a", None),
            ("NULL", None),
        ],
    )
    def test_parses(self, raw, expected):
        assert parse_cell(raw) == expected
        if expected is not None:
            assert type(parse_cell(raw)) is type(expected)

    def test_strips_whitespace(self):
        assert parse_cell("  42 ") == 42
        assert parse_cell("  Ontario ") == "Ontario"

    def test_leading_zero_codes_stay_text(self):
        # Postal/FIPS codes must not lose their leading zeros.
        assert parse_cell("00501") == "00501"
        assert parse_cell("007") == "007"

    def test_plain_zero_is_int(self):
        assert parse_cell("0") == 0
        assert isinstance(parse_cell("0"), int)


class TestScalarParsers:
    def test_int_rejects_float_text(self):
        assert try_parse_int("3.5") is None
        assert try_parse_int("abc") is None
        assert try_parse_int("") is None

    def test_float_rejects_specials(self):
        for text in ("inf", "-inf", "nan", "Infinity"):
            assert try_parse_float(text) is None

    def test_float_requires_a_digit(self):
        assert try_parse_float("e") is None
        assert try_parse_float(".") is None

    def test_bool_spellings(self):
        assert try_parse_bool("TRUE") is True
        assert try_parse_bool("y") is True
        assert try_parse_bool("f") is False
        assert try_parse_bool("2") is None


class TestTypeOfCell:
    @pytest.mark.parametrize(
        "value,dtype",
        [
            (None, DataType.EMPTY),
            (True, DataType.BOOLEAN),
            (5, DataType.INTEGER),
            (5.0, DataType.FLOAT),
            ("x", DataType.TEXT),
        ],
    )
    def test_classification(self, value, dtype):
        assert type_of_cell(value) is dtype

    def test_bool_not_confused_with_int(self):
        # bool subclasses int in Python; the classifier must not care.
        assert type_of_cell(True) is DataType.BOOLEAN
        assert type_of_cell(1) is DataType.INTEGER


class TestInferColumnType:
    def test_all_nulls(self):
        assert infer_column_type([None, None]) is DataType.EMPTY

    def test_empty_sequence(self):
        assert infer_column_type([]) is DataType.EMPTY

    def test_pure_ints(self):
        assert infer_column_type([1, 2, None, 3]) is DataType.INTEGER

    def test_ints_widen_to_float(self):
        assert infer_column_type([1, 2.5]) is DataType.FLOAT

    def test_text_dominates(self):
        assert infer_column_type([1, "x", 2.0]) is DataType.TEXT

    def test_pure_bools(self):
        assert infer_column_type([True, False, None]) is DataType.BOOLEAN

    def test_bool_mixed_with_numbers_is_text(self):
        # A column holding both "true" and numbers is dirty text data.
        assert infer_column_type([True, 1]) is DataType.TEXT
