"""Tests for the metrics registry and its WorkMeter integration."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.resilience.budget import BudgetExceeded, WorkMeter


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter.snapshot() == {"kind": "counter", "value": 3}


class TestGauge:
    def test_moves_both_directions(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.set(4)
        assert gauge.value == 4
        assert gauge.snapshot() == {"kind": "gauge", "value": 4}


class TestHistogram:
    def test_bucketing_with_overflow(self):
        hist = Histogram("h", (10, 100))
        for value in (1, 10, 11, 100, 101, 5000):
            hist.observe(value)
        # bisect_left on upper-inclusive edges: <=10, <=100, overflow.
        assert hist.counts == [2, 2, 2]
        assert hist.count == 6
        assert hist.total == 1 + 10 + 11 + 100 + 101 + 5000

    def test_bounds_must_be_sorted_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (10, 5))

    def test_snapshot_shape(self):
        hist = Histogram("h", (1, 2))
        hist.observe(1)
        snap = hist.snapshot()
        assert snap["kind"] == "histogram"
        assert snap["bounds"] == [1, 2]
        assert snap["counts"] == [1, 0, 0]
        assert snap["count"] == 1
        assert snap["sum"] == 1


class TestRegistry:
    def test_create_or_return(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", (1,)) is registry.histogram("h", (9,))

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")
        with pytest.raises(TypeError):
            registry.histogram("a", (1,))

    def test_inc_and_value_shorthand(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        assert registry.value("hits") == 3
        assert registry.value("absent", default=7) == 7

    def test_value_rejects_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1,))
        with pytest.raises(TypeError):
            registry.value("h")

    def test_snapshot_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.inc("zulu")
        registry.inc("alpha", 2)
        registry.gauge("mid").set(5)
        snap = registry.snapshot()
        assert list(snap) == ["alpha", "mid", "zulu"]
        assert snap == registry.snapshot()


class TestWorkMeterIntegration:
    def test_ticks_feed_per_op_counters(self):
        registry = MetricsRegistry()
        meter = WorkMeter(None, metrics=registry)
        meter.tick(3, op="fd.refine")
        meter.tick(2, op="fd.refine")
        meter.tick(1, op="screen.column")
        assert registry.value("ops.fd.refine") == 5
        assert registry.value("ops.screen.column") == 1
        assert meter.spent == 6

    def test_exhausting_tick_is_still_counted(self):
        registry = MetricsRegistry()
        meter = WorkMeter(4, metrics=registry)
        meter.tick(3, op="w")
        with pytest.raises(BudgetExceeded):
            meter.tick(3, op="w")
        # The charge lands before the budget check, in both places.
        assert meter.spent == 6
        assert registry.value("ops.w") == 6

    def test_event_records_without_charging(self):
        registry = MetricsRegistry()
        meter = WorkMeter(1, metrics=registry)
        meter.event("fd.level2.nodes", 40)
        assert registry.value("fd.level2.nodes") == 40
        assert meter.spent == 0

    def test_no_registry_is_silent(self):
        meter = WorkMeter(None)
        meter.tick(5, op="w")
        meter.event("anything", 3)
        assert meter.spent == 5
