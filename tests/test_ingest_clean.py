"""Unit tests for repro.ingest.clean."""

from repro.dataframe import Column, Table
from repro.ingest.clean import (
    WIDE_TABLE_CUTOFF,
    clean_table,
    drop_trailing_empty_columns,
)


def with_trailing(n_trailing: int) -> Table:
    columns = [Column("a", [1, 2]), Column("b", ["x", None])]
    for i in range(n_trailing):
        columns.append(Column(f"empty{i}", [None, None]))
    return Table("t", columns)


class TestTrailingColumns:
    def test_trailing_run_removed(self):
        trimmed, removed = drop_trailing_empty_columns(with_trailing(3))
        assert removed == 3
        assert trimmed.column_names == ("a", "b")

    def test_no_trailing(self):
        trimmed, removed = drop_trailing_empty_columns(with_trailing(0))
        assert removed == 0
        assert trimmed.num_columns == 2

    def test_interior_empty_column_kept(self):
        table = Table(
            "t",
            [
                Column("a", [1]),
                Column("mid", [None]),
                Column("b", [2]),
            ],
        )
        trimmed, removed = drop_trailing_empty_columns(table)
        assert removed == 0
        assert trimmed.column_names == ("a", "mid", "b")

    def test_entirely_empty_table(self):
        table = Table("t", [Column("a", [None]), Column("b", [None])])
        trimmed, removed = drop_trailing_empty_columns(table)
        assert removed == 2
        assert trimmed.num_columns == 0


class TestWideCutoff:
    def test_cutoff_value_is_the_papers(self):
        assert WIDE_TABLE_CUTOFF == 100

    def test_narrow_table_survives(self):
        outcome = clean_table(with_trailing(1))
        assert outcome.table is not None
        assert not outcome.dropped_as_wide
        assert outcome.trailing_columns_removed == 1

    def test_wide_table_dropped(self):
        columns = [Column(f"c{i}", [1]) for i in range(150)]
        outcome = clean_table(Table("wide", columns))
        assert outcome.table is None
        assert outcome.dropped_as_wide

    def test_exactly_at_cutoff_survives(self):
        columns = [Column(f"c{i}", [1]) for i in range(100)]
        assert clean_table(Table("t", columns)).table is not None

    def test_trailing_removal_can_save_a_table(self):
        # 98 real columns + 5 trailing empties: trimming brings it
        # under the cutoff, so the table is kept.
        columns = [Column(f"c{i}", [1]) for i in range(98)]
        columns += [Column("", [None]) for _ in range(5)]
        outcome = clean_table(Table("t", columns))
        assert outcome.table is not None
        assert outcome.table.num_columns == 98
