"""End-to-end invariants of the flame-attribution profiler.

These are the contracts the profiler ships under (DESIGN.md §15):

* attribution is total — the profile's tick count reconciles exactly
  with the guarded executors' ``ticks_spent`` and with the analysis
  stage spans of the trace;
* pooled equivalence — a chaos-ridden ``--workers 4`` run writes a
  byte-identical profile artifact to the serial run's;
* zero contamination — profiling never perturbs the run: a profiled
  run's trace differs from an unprofiled one only in the ``profile.*``
  summary counters, and ``diff_runs`` reports no drift.

One guarded corpus is built per variant (serial profiled, pooled
profiled, serial unprofiled) at a small scale so the whole module runs
in seconds, not minutes.
"""

from __future__ import annotations

import filecmp
import json
import pathlib

import pytest

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.obs.diff import diff_runs, load_run
from repro.obs.profile import inclusive_frames, read_profile
from repro.obs.trace import read_trace

SCALE = 0.05
SEED = 7
STAGE_BUDGET = 200_000

#: Stage names of the guarded analysis units; their spans' self ops are
#: exactly the ticks the profiler attributes (ingest spans are metered
#: outside the analysis executors and stay out of the profile).
ANALYSIS_STAGES = ("screen", "joinsig", "union", "fd")


def _drive(config: StudyConfig) -> int:
    """Build + fully analyze one study; total guarded ticks spent."""
    with Study.build(config) as study:
        for portal in study:
            portal.joinability()
            portal.unionability()
            portal.normalization()
        return sum(
            portal.executor.ticks_spent
            for portal in study
            if portal.executor is not None
        )


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Serial-profiled, pooled-profiled, and unprofiled run artifacts."""
    root = tmp_path_factory.mktemp("profile-runs")

    serial = root / "serial"
    serial.mkdir()
    serial_ticks = _drive(
        StudyConfig(
            scale=SCALE,
            seed=SEED,
            stage_budget=STAGE_BUDGET,
            profile_out=str(serial / "profile.json"),
            trace_out=str(serial / "trace.jsonl"),
        )
    )

    pooled = root / "pooled"
    pooled.mkdir()
    pooled_ticks = _drive(
        StudyConfig(
            scale=SCALE,
            seed=SEED,
            stage_budget=STAGE_BUDGET,
            workers=4,
            chaos_kill_rate=0.2,
            shard_dir=str(pooled / "shards"),
            profile_out=str(pooled / "profile.json"),
        )
    )

    plain = root / "plain"
    plain.mkdir()
    _drive(
        StudyConfig(
            scale=SCALE,
            seed=SEED,
            stage_budget=STAGE_BUDGET,
            trace_out=str(plain / "trace.jsonl"),
        )
    )

    return {
        "serial": serial,
        "serial_ticks": serial_ticks,
        "pooled": pooled,
        "pooled_ticks": pooled_ticks,
        "plain": plain,
    }


class TestReconciliation:
    def test_profile_total_equals_executor_ticks(self, runs):
        doc = read_profile(runs["serial"] / "profile.json")
        assert doc["total_ticks"] == runs["serial_ticks"]
        assert doc["total_ticks"] == sum(doc["frames"].values())
        assert doc["total_ticks"] > 0

    def test_profile_total_equals_analysis_span_ops(self, runs):
        doc = read_profile(runs["serial"] / "profile.json")
        span_ops = sum(
            int(record.get("self_ops", 0))
            for record in read_trace(runs["serial"] / "trace.jsonl")
            if record.get("type") == "span"
            and (
                record.get("name") in ANALYSIS_STAGES
                or str(record.get("name", "")).startswith("pairs@")
            )
        )
        assert doc["total_ticks"] == span_ops

    def test_every_frame_path_is_rooted_at_study(self, runs):
        doc = read_profile(runs["serial"] / "profile.json")
        assert all(
            path.startswith("study;") for path in doc["frames"]
        )

    def test_dataframe_engine_holds_material_share(self, runs):
        # The acceptance bar: the report must name a dataframe-engine
        # frame holding a double-digit share of the study's ops.
        doc = read_profile(runs["serial"] / "profile.json")
        inclusive = inclusive_frames(doc["frames"])
        assert inclusive["dataframe"] / doc["total_ticks"] >= 0.10


class TestPooledEquivalence:
    def test_chaos_pooled_profile_is_byte_identical_to_serial(self, runs):
        assert filecmp.cmp(
            runs["serial"] / "profile.json",
            runs["pooled"] / "profile.json",
            shallow=False,
        )

    def test_pooled_ticks_match_serial(self, runs):
        assert runs["pooled_ticks"] == runs["serial_ticks"]


class TestZeroContamination:
    def test_profiled_trace_adds_only_profile_counters(self, runs):
        profiled = (runs["serial"] / "trace.jsonl").read_text(
            encoding="utf-8"
        )
        plain = (runs["plain"] / "trace.jsonl").read_text(encoding="utf-8")
        stripped = "".join(
            line
            for line in profiled.splitlines(keepends=True)
            if '"name": "profile.' not in line
        )
        assert stripped == plain

    def test_profiled_run_diffs_empty_against_unprofiled(self, runs):
        report = diff_runs(
            load_run(str(runs["serial"] / "trace.jsonl")),
            load_run(str(runs["plain"] / "trace.jsonl")),
        )
        assert not report.has_drift

    def test_profile_counters_present_only_when_profiled(self, runs):
        def metric_names(path: pathlib.Path) -> set:
            return {
                record["name"]
                for record in read_trace(path)
                if record.get("type") == "metric"
            }

        profiled = metric_names(runs["serial"] / "trace.jsonl")
        plain = metric_names(runs["plain"] / "trace.jsonl")
        assert {"profile.ticks", "profile.frames"} <= profiled
        assert not any(name.startswith("profile.") for name in plain)

    def test_artifact_meta_never_records_workers(self, runs):
        # Pooled and serial artifacts must compare with `cmp`, so the
        # meta block cannot mention the worker count.
        doc = json.loads(
            (runs["serial"] / "profile.json").read_text(encoding="utf-8")
        )
        assert "workers" not in doc.get("meta", {})
