"""Integration tests: resilient crawls through the §2.2 pipeline.

Covers the ISSUE 1 acceptance criteria: retry recovery on flaky
corpora, bit-for-bit seed equivalence with retries disabled,
byte-identical retry provenance under a fixed seed, and journal-based
resume after a mid-portal kill (verified via ``requests_made``).
"""

import datetime

import pytest

from repro.generator import SG_PROFILE, flaky_profile, generate_portal
from repro.ingest.pipeline import FetchOutcome, IngestReport, ingest_portal
from repro.portal import (
    BlobStore,
    CkanApi,
    FailureMode,
    HttpClient,
    TransientFault,
)
from repro.portal.models import Dataset, MetadataKind, Portal, Resource
from repro.resilience import (
    CrawlJournal,
    ResilientHttpClient,
    RetryPolicy,
)


def flaky_portal():
    """A hand-built portal with permanent, transient, and truncated faults."""
    store = BlobStore()
    resources = []

    def add(rid, build):
        url = f"https://flaky.sim/{rid}"
        resources.append(Resource(rid, rid, "CSV", url))
        build(url)

    add("good", lambda url: store.put(url, b"a,b\n1,2\n3,4\n"))
    add("gone", lambda url: store.put_failure(url, FailureMode.GONE))
    add("flaky429", lambda url: store.put_transient(
        url, b"a,b\n5,6\n7,8\n",
        TransientFault(FailureMode.RATE_LIMITED, failures=2, retry_after=1.0),
    ))
    add("flaky503", lambda url: store.put_transient(
        url, b"a,b\n9,8\n7,6\n",
        TransientFault(FailureMode.UNAVAILABLE, failures=1, retry_after=0.5),
    ))
    add("flaky-timeout", lambda url: store.put_transient(
        url, b"a,b\n2,4\n6,8\n",
        TransientFault(FailureMode.TIMEOUT, failures=1),
    ))
    add("cut", lambda url: store.put_truncated(
        url, b"a,b\n1,2\n3,4\n5,6\n7,8\n", truncate_at=12,
    ))

    dataset = Dataset(
        dataset_id="d1",
        title="t",
        description="",
        topic="x",
        organization="o",
        published=datetime.date(2020, 1, 1),
        metadata_kind=MetadataKind.LACKING,
        resources=tuple(resources),
    )
    return Portal(code="XX", name="Flaky", datasets=[dataset]), store


def summarize(report: IngestReport) -> tuple:
    """Canonical comparison key over everything the report asserts."""
    return (
        report.portal_code,
        report.total_datasets,
        report.total_declared_tables,
        report.downloadable_tables,
        report.readable_tables,
        tuple(sorted(
            (outcome.name, count)
            for outcome, count in report.outcome_counts.items()
        )),
        tuple(sorted(report.tables_per_dataset.items())),
        tuple(
            (
                t.resource_id, t.name, t.header_index, t.degraded,
                t.raw.num_rows, t.raw.num_columns,
                t.clean.num_rows if t.clean else None,
                t.clean.column_names if t.clean else None,
            )
            for t in report.tables
        ),
        report.resilience.provenance_key(),
    )


class TestSingleShotOnFlakyPortal:
    def test_transients_lost_without_retries(self):
        portal, store = flaky_portal()
        report = ingest_portal(CkanApi(portal), HttpClient(store))
        # Single shot: all three transient resources fail their first
        # attempt, so only good + cut count as downloadable.
        assert report.downloadable_tables == 2
        assert report.outcome_counts[FetchOutcome.NOT_DOWNLOADABLE] == 4
        assert report.resilience.max_retries == 0
        assert report.resilience.recovered_after_retry == 0
        assert all(
            attempts == 1
            for attempts
            in report.resilience.attempts_per_resource.values()
        )

    def test_truncated_without_retries_is_degraded(self):
        portal, store = flaky_portal()
        report = ingest_portal(CkanApi(portal), HttpClient(store))
        cut = next(t for t in report.tables if t.resource_id == "cut")
        assert cut.degraded
        assert report.outcome_counts[FetchOutcome.DEGRADED] == 1
        assert report.resilience.degraded_tables == 1


class TestRetriesOnFlakyPortal:
    @pytest.fixture()
    def report(self):
        portal, store = flaky_portal()
        client = ResilientHttpClient(
            HttpClient(store), policy=RetryPolicy(max_retries=3), seed=3
        )
        return ingest_portal(CkanApi(portal), client)

    def test_retries_recover_transient_resources(self, report):
        assert report.downloadable_tables == 5  # all but the 410
        assert report.resilience.recovered_after_retry == 3
        assert report.outcome_counts[FetchOutcome.READABLE] == 4
        assert report.outcome_counts[FetchOutcome.DEGRADED] == 1
        assert report.outcome_counts[FetchOutcome.NOT_DOWNLOADABLE] == 1

    def test_attempt_provenance_recorded(self, report):
        attempts = report.resilience.attempts_per_resource
        assert attempts["good"] == 1
        assert attempts["gone"] == 1  # permanent: never retried
        assert attempts["flaky429"] == 3
        assert attempts["flaky503"] == 2
        assert attempts["flaky-timeout"] == 2
        # The persistently truncated body burns the whole budget.
        assert attempts["cut"] == 4
        assert report.resilience.total_attempts == 13
        assert report.resilience.retried_resources == 4
        assert report.resilience.simulated_wait_seconds > 0.0

    def test_degraded_table_still_analyzable(self, report):
        cut = next(t for t in report.tables if t.resource_id == "cut")
        assert cut.degraded and cut.analyzable
        assert cut.clean.column_names == ("a", "b")

    def test_provenance_byte_identical_across_crawls(self):
        def crawl():
            portal, store = flaky_portal()
            client = ResilientHttpClient(
                HttpClient(store),
                policy=RetryPolicy(max_retries=3),
                seed=3,
            )
            return ingest_portal(CkanApi(portal), client)

        first, second = crawl(), crawl()
        assert (
            repr(first.resilience.provenance_key())
            == repr(second.resilience.provenance_key())
        )
        assert summarize(first) == summarize(second)


class TestSeedEquivalence:
    def test_wrapped_client_reproduces_plain_crawl(self):
        """max_retries=0 through the resilient layer == the seed crawl."""
        generated = generate_portal(SG_PROFILE, seed=3, scale=0.08)

        plain_client = HttpClient(generated.store)
        plain = ingest_portal(CkanApi(generated.portal), plain_client)

        wrapped_inner = HttpClient(generated.store)
        wrapped = ingest_portal(
            CkanApi(generated.portal),
            ResilientHttpClient(wrapped_inner, policy=RetryPolicy()),
        )
        assert summarize(plain) == summarize(wrapped)
        assert plain_client.requests_made == wrapped_inner.requests_made

    def test_default_profiles_have_no_transient_faults(self):
        assert SG_PROFILE.transient_rate == 0.0
        assert SG_PROFILE.truncated_rate == 0.0


class TestFlakyGeneratedCorpus:
    @pytest.fixture(scope="class")
    def generated(self):
        profile = flaky_profile(
            SG_PROFILE, transient_rate=0.3, truncated_rate=0.05
        )
        return generate_portal(profile, seed=3, scale=0.12)

    def test_retries_beat_single_shot(self, generated):
        single = ingest_portal(
            CkanApi(generated.portal), HttpClient(generated.store)
        )
        retried = ingest_portal(
            CkanApi(generated.portal),
            ResilientHttpClient(
                HttpClient(generated.store),
                policy=RetryPolicy(max_retries=3),
                seed=3,
            ),
        )
        assert retried.resilience.recovered_after_retry > 0
        assert retried.downloadable_tables > single.downloadable_tables
        assert retried.readable_tables > single.readable_tables

    def test_deterministic_retry_provenance(self, generated):
        def crawl():
            return ingest_portal(
                CkanApi(generated.portal),
                ResilientHttpClient(
                    HttpClient(generated.store),
                    policy=RetryPolicy(max_retries=2),
                    seed=7,
                ),
            )

        assert summarize(crawl()) == summarize(crawl())


class CrawlKilled(RuntimeError):
    """Simulates the crawler process dying mid-portal."""


class DyingHttpClient(HttpClient):
    """Transport that dies after a fixed request budget."""

    def __init__(self, store, budget: int):
        super().__init__(store)
        self.budget = budget

    def fetch(self, url):
        if self.requests_made >= self.budget:
            raise CrawlKilled(f"crawler killed after {self.budget} requests")
        return super().fetch(url)


class TestCheckpointResume:
    def build_portal(self):
        profile = flaky_profile(
            SG_PROFILE, transient_rate=0.25, truncated_rate=0.04
        )
        return generate_portal(profile, seed=5, scale=0.08)

    def crawl_client(self, store, budget=None):
        inner = (
            HttpClient(store)
            if budget is None
            else DyingHttpClient(store, budget)
        )
        return inner, ResilientHttpClient(
            inner, policy=RetryPolicy(max_retries=2), seed=5
        )

    def test_killed_crawl_resumes_without_refetching(self, tmp_path):
        generated = self.build_portal()
        api = CkanApi(generated.portal)

        # Reference: one uninterrupted crawl (no journal involved).
        ref_inner, ref_client = self.crawl_client(generated.store)
        reference = ingest_portal(api, ref_client)
        total_requests = ref_inner.requests_made

        # Crawl 1: dies mid-portal, checkpointing as it goes.
        budget = total_requests // 2
        journal_path = tmp_path / "crawl.jsonl"
        dying_inner, dying_client = self.crawl_client(
            generated.store, budget=budget
        )
        with CrawlJournal(journal_path) as journal:
            with pytest.raises(CrawlKilled):
                ingest_portal(api, dying_client, journal=journal)
        checkpointed = {
            entry.resource_id for entry in CrawlJournal(journal_path)
        }
        assert 0 < len(checkpointed) < reference.total_declared_tables

        # Crawl 2: resumes from the journal with a fresh client.
        resume_inner, resume_client = self.crawl_client(generated.store)
        with CrawlJournal(journal_path) as journal:
            resumed = ingest_portal(api, resume_client, journal=journal)

        # Identical report, including retry provenance...
        assert summarize(resumed)[:-1] == summarize(reference)[:-1]
        ref_prov = reference.resilience
        res_prov = resumed.resilience
        assert (
            res_prov.attempts_per_resource == ref_prov.attempts_per_resource
        )
        assert res_prov.recovered_after_retry == ref_prov.recovered_after_retry
        assert res_prov.degraded_tables == ref_prov.degraded_tables
        assert res_prov.simulated_wait_seconds == pytest.approx(
            ref_prov.simulated_wait_seconds
        )
        assert res_prov.resumed_resources == len(checkpointed)

        # ...and completed resources were never re-fetched: the resumed
        # client spent requests only on resources absent from the journal.
        expected_requests = sum(
            attempts
            for resource_id, attempts
            in ref_prov.attempts_per_resource.items()
            if resource_id not in checkpointed
        )
        assert resume_inner.requests_made == expected_requests
        assert resume_inner.requests_made < total_requests

    def test_resumed_requests_only_cover_unfinished_resources(self, tmp_path):
        generated = self.build_portal()
        api = CkanApi(generated.portal)

        ref_inner, ref_client = self.crawl_client(generated.store)
        reference = ingest_portal(api, ref_client)

        journal_path = tmp_path / "crawl.jsonl"
        budget = ref_inner.requests_made // 3
        _, dying_client = self.crawl_client(generated.store, budget=budget)
        with CrawlJournal(journal_path) as journal:
            with pytest.raises(CrawlKilled):
                ingest_portal(api, dying_client, journal=journal)

        checkpointed = {
            entry.resource_id for entry in CrawlJournal(journal_path)
        }
        expected_requests = sum(
            attempts
            for resource_id, attempts
            in reference.resilience.attempts_per_resource.items()
            if resource_id not in checkpointed
        )
        resume_inner, resume_client = self.crawl_client(generated.store)
        with CrawlJournal(journal_path) as journal:
            ingest_portal(api, resume_client, journal=journal)
        assert resume_inner.requests_made == expected_requests
