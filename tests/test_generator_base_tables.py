"""Unit tests for repro.generator.base_tables (blueprint instantiation)."""

import random

import pytest

from repro.generator.base_tables import build_instance, stable_index
from repro.generator.domains import DomainRegistry
from repro.generator.schemas import BLUEPRINTS, blueprint_by_topic


@pytest.fixture(scope="module")
def registry():
    return DomainRegistry("CA", random.Random(9))


def instance(registry, topic="fisheries_landings", seed=1, rows=200, **kwargs):
    return build_instance(
        blueprint_by_topic(topic),
        registry,
        random.Random(seed),
        "ca-fam-0001",
        rows,
        **kwargs,
    )


class TestStableIndex:
    def test_deterministic(self):
        assert stable_index("Ontario", 10) == stable_index("Ontario", 10)

    def test_in_range(self):
        for value in ("a", "b", 42, None):
            assert 0 <= stable_index(value, 7) < 7


class TestInstantiation:
    def test_dims_resolved(self, registry):
        inst = instance(registry)
        assert [d.column for d in inst.dims] == ["species", "province", "year"]
        assert inst.dim("species").is_entity

    def test_region_renamed_per_portal(self):
        us = DomainRegistry("US", random.Random(9))
        inst = instance(us)
        assert any(d.column == "state" for d in inst.dims)

    def test_planted_fd_holds(self, registry):
        inst = instance(registry)
        species = inst.dim("species")
        mapping = species.attribute_maps["species_group"]
        # Functional: every key maps to exactly one value.
        assert set(mapping) == set(species.values)
        # Stable across families: CRC-based, not RNG-based.
        other = instance(registry, seed=999)
        other_map = other.dim("species").attribute_maps.get("species_group", {})
        for key in set(mapping) & set(other_map):
            assert mapping[key] == other_map[key]

    def test_fact_row_shape(self, registry):
        inst = instance(registry, rows=100)
        width = len(inst.dims) + len(inst.measures)
        assert all(len(row) == width for row in inst.fact_rows)

    def test_row_target_roughly_met(self, registry):
        inst = instance(registry, rows=300)
        assert 100 <= len(inst.fact_rows) <= 900

    def test_duplicate_rate_adds_rows(self, registry):
        # Duplicate rows hit ~30% of families; over several seeds the
        # duplicated variants must produce strictly more rows somewhere
        # and never fewer.
        grew = False
        for seed in range(10):
            base = instance(registry, seed=seed, rows=300, duplicate_rate=0.0)
            duped = instance(registry, seed=seed, rows=300, duplicate_rate=0.5)
            assert len(duped.fact_rows) >= len(base.fact_rows)
            if len(duped.fact_rows) > len(base.fact_rows):
                grew = True
        assert grew

    def test_small_grid_emits_full_cross_product(self, registry):
        inst = instance(registry, topic="covid_testing", rows=100_000)
        dates = inst.dim("date")
        ages = inst.dim("age_group")
        expected = len(dates.values) * len(ages.values)
        # duplicate_rate 0 -> exactly the grid.
        assert len(inst.fact_rows) == expected

    def test_axis_helpers(self, registry):
        inst = instance(registry)
        assert inst.temporal_column == "year"
        assert inst.partition_column == "province"

    def test_determinism(self, registry):
        a = instance(registry, seed=5)
        b = instance(registry, seed=5)
        assert a.fact_rows == b.fact_rows


class TestCoverageBimodality:
    def test_full_coverage_forced(self, registry):
        inst = instance(registry, coverage_full_probability=1.0)
        year = inst.dim("year")
        assert len(year.values) == len(year.domain.values)

    def test_partial_coverage(self, registry):
        inst = instance(registry, seed=2, coverage_full_probability=0.0)
        year = inst.dim("year")
        assert len(year.values) < len(year.domain.values)


class TestMeasureResolutions:
    def test_coarse_grid_repeats_values(self, registry):
        inst = instance(
            registry, rows=400, measure_resolutions=((50, 1.0),)
        )
        tonnes = {row[len(inst.dims)] for row in inst.fact_rows}
        assert len(tonnes) <= 51

    def test_fine_grid_nearly_unique(self, registry):
        inst = instance(
            registry, rows=200, measure_resolutions=((10_000_000, 1.0),)
        )
        tonnes = [row[len(inst.dims)] for row in inst.fact_rows]
        assert len(set(tonnes)) > 0.9 * len(tonnes)


class TestEveryBlueprint:
    @pytest.mark.parametrize(
        "topic", [bp.topic for bp in BLUEPRINTS]
    )
    def test_instantiates(self, registry, topic):
        inst = instance(registry, topic=topic, rows=60)
        assert inst.fact_rows
        assert inst.fact_columns
        if inst.blueprint.temporal_dim is not None:
            assert inst.temporal_column in [d.column for d in inst.dims]
