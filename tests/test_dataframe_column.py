"""Unit tests for repro.dataframe.column."""

import pytest

from repro.dataframe import Column, DataType


class TestBasics:
    def test_len_iter_getitem(self):
        column = Column("c", [1, 2, 3])
        assert len(column) == 3
        assert list(column) == [1, 2, 3]
        assert column[1] == 2

    def test_equality_by_name_and_values(self):
        assert Column("c", [1]) == Column("c", [1])
        assert Column("c", [1]) != Column("d", [1])
        assert Column("c", [1]) != Column("c", [2])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Column("c", [1]))

    def test_dtype_inferred_and_cached(self):
        column = Column("c", [1, 2])
        assert column.dtype is DataType.INTEGER
        assert column.dtype is DataType.INTEGER  # cached path

    def test_dtype_can_be_provided(self):
        column = Column("c", ["1"], dtype=DataType.TEXT)
        assert column.dtype is DataType.TEXT


class TestNullStats:
    def test_null_count_and_ratio(self):
        column = Column("c", [1, None, 3, None])
        assert column.null_count == 2
        assert column.null_ratio == 0.5

    def test_empty_column_ratio_zero(self):
        assert Column("c", []).null_ratio == 0.0

    def test_entirely_null(self):
        assert Column("c", [None, None]).is_entirely_null
        assert not Column("c", [None, 1]).is_entirely_null
        # Zero rows counts as entirely null (nothing contradicts it).
        assert Column("c", []).is_entirely_null


class TestUniqueness:
    def test_distinct_excludes_nulls(self):
        column = Column("c", [1, 1, 2, None])
        assert column.distinct_values() == frozenset({1, 2})
        assert column.distinct_count == 2

    def test_uniqueness_score_definition(self):
        # |set(c)| / |c| with nulls in the denominator (paper §4.1).
        column = Column("c", [1, 1, 2, None])
        assert column.uniqueness_score == pytest.approx(2 / 4)

    def test_key_requires_no_nulls_and_no_repeats(self):
        assert Column("c", [1, 2, 3]).is_key
        assert not Column("c", [1, 2, 2]).is_key
        assert not Column("c", [1, 2, None]).is_key
        assert not Column("c", []).is_key

    def test_value_counts(self):
        column = Column("c", ["a", "b", "a", None])
        assert column.value_counts() == {"a": 2, "b": 1}


class TestDerivation:
    def test_take_reorders(self):
        column = Column("c", [10, 20, 30])
        taken = column.take([2, 0])
        assert taken.values == [30, 10]
        assert taken.name == "c"

    def test_take_empty(self):
        assert Column("c", [1]).take([]).values == []

    def test_renamed_shares_data_and_caches(self):
        column = Column("c", [1, 1, 2])
        _ = column.distinct_count  # warm the cache
        renamed = column.renamed("d")
        assert renamed.name == "d"
        assert renamed.values == column.values
        assert renamed.distinct_count == 2
