"""Tests for the shared nearest-rank percentile arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.quantiles import percentile_nearest_rank


class TestPercentileNearestRank:
    def test_empty_is_zero(self):
        assert percentile_nearest_rank([], 50) == 0
        assert percentile_nearest_rank([], 99) == 0

    def test_single_value_at_every_percentile(self):
        for pct in (0, 1, 50, 99, 100):
            assert percentile_nearest_rank([42], pct) == 42

    def test_nearest_rank_definition(self):
        values = [10, 20, 30, 40]
        # rank = ceil(pct/100 * 4): p25 -> rank 1, p50 -> rank 2 ...
        assert percentile_nearest_rank(values, 25) == 10
        assert percentile_nearest_rank(values, 50) == 20
        assert percentile_nearest_rank(values, 75) == 30
        assert percentile_nearest_rank(values, 100) == 40

    def test_tiny_pct_clamps_to_first(self):
        assert percentile_nearest_rank([5, 6, 7], 0) == 5
        assert percentile_nearest_rank([5, 6, 7], 0.0001) == 5

    def test_over_100_clamps_to_last(self):
        assert percentile_nearest_rank([5, 6, 7], 150) == 7

    def test_ties_are_exact(self):
        values = [1, 3, 3, 3, 9]
        assert percentile_nearest_rank(values, 50) == 3
        assert percentile_nearest_rank(values, 60) == 3
        assert percentile_nearest_rank(values, 80) == 3

    @given(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=50),
        st.floats(0, 100, allow_nan=False),
    )
    def test_result_is_an_observed_value(self, values, pct):
        values.sort()
        assert percentile_nearest_rank(values, pct) in values

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=50))
    def test_monotone_in_pct(self, values):
        values.sort()
        results = [
            percentile_nearest_rank(values, pct)
            for pct in (1, 25, 50, 75, 99, 100)
        ]
        assert results == sorted(results)
