"""Unit tests for repro.generator.domains."""

import random

import pytest

from repro.generator.domains import (
    Domain,
    DomainKind,
    DomainRegistry,
    code_domain,
    incremental_domain,
    measure_domain,
)


@pytest.fixture(scope="module")
def registry():
    return DomainRegistry("CA", random.Random(1))


class TestRegistry:
    def test_portal_geo_domains_exist(self, registry):
        assert "geo.region.CA" in registry
        assert "geo.city.CA" in registry
        assert "geo.point.CA" in registry

    def test_shared_domains(self, registry):
        for name in ("time.year", "cat.species.fish", "cat.age_group",
                     "str.person"):
            assert name in registry

    def test_region_vocab_matches_portal(self):
        ca = DomainRegistry("CA", random.Random(1))
        us = DomainRegistry("US", random.Random(1))
        assert "Ontario" in ca.get("geo.region.CA").values
        assert "California" in us.get("geo.region.US").values

    def test_unknown_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_names_sorted(self, registry):
        names = registry.names()
        assert names == sorted(names)


class TestClosedDomainDraw:
    def test_full_draw_preserves_order(self, registry):
        domain = registry.get("cat.age_group")
        assert domain.draw(random.Random(0), 999) == list(domain.values)

    def test_partial_draw_distinct(self, registry):
        domain = registry.get("geo.region.CA")
        drawn = domain.draw(random.Random(0), 5)
        assert len(drawn) == 5
        assert len(set(drawn)) == 5
        assert all(v in domain.values for v in drawn)


class TestOpenDomains:
    def test_incremental(self):
        domain = incremental_domain("fam1.t")
        assert domain.kind is DomainKind.INCREMENTAL
        assert domain.draw(random.Random(0), 5) == [1, 2, 3, 4, 5]
        assert not domain.is_closed

    def test_incremental_scoped_names_differ(self):
        assert incremental_domain("a").name != incremental_domain("b").name

    def test_code_domain(self):
        domain = code_domain("fam.F", "F")
        codes = domain.draw(random.Random(0), 10)
        assert len(set(codes)) == 10
        assert all(c.startswith("F-") for c in codes)

    def test_measure_domain_distinct_ints(self):
        domain = measure_domain("count", 0, 100, integral=True)
        values = domain.draw(random.Random(0), 20)
        assert len(set(values)) == 20
        assert all(isinstance(v, int) for v in values)

    def test_person_names_format(self, registry):
        names = registry.get("str.person").draw(random.Random(0), 15)
        assert len(set(names)) == 15
        assert all(", " in n for n in names)

    def test_point_domain_format(self, registry):
        points = registry.get("geo.point.CA").values
        assert all(p.startswith("POINT (") for p in points)
        assert len(set(points)) == len(points)


class TestDeterminism:
    def test_same_seed_same_registry(self):
        a = DomainRegistry("UK", random.Random(42))
        b = DomainRegistry("UK", random.Random(42))
        assert a.get("geo.point.UK").values == b.get("geo.point.UK").values

    def test_draws_deterministic(self):
        domain = Domain("d", DomainKind.CATEGORICAL, tuple(range(50)))
        assert domain.draw(random.Random(5), 10) == domain.draw(
            random.Random(5), 10
        )
