"""Tests for union-partner ranking (repro.unionability.ranking)."""

import pytest

from repro.dataframe import Column, Table
from repro.unionability import analyze_unionability
from repro.unionability.ranking import (
    column_value_overlap,
    name_affinity,
    rank_union_partners,
)
from tests.test_joinability_pairs import wrap


class TestNameAffinity:
    def test_periodic_stems_similar(self):
        assert name_affinity("landings_2019", "landings_2020") == pytest.approx(
            1 / 3
        )

    def test_identical(self):
        assert name_affinity("a_b", "a_b") == 1.0

    def test_disjoint(self):
        assert name_affinity("fish", "tax") == 0.0

    def test_empty(self):
        assert name_affinity("", "x") == 0.0


class TestValueOverlap:
    def test_shared_text_columns(self):
        left = Table("l", [Column("c", ["a", "b"]), Column("v", [1, 2])])
        right = Table("r", [Column("c", ["a", "b"]), Column("v", [3, 4])])
        # Numeric v is skipped; text c overlaps fully.
        assert column_value_overlap(left, right) == 1.0

    def test_disjoint_text(self):
        left = Table("l", [Column("c", ["a"])])
        right = Table("r", [Column("c", ["z"])])
        assert column_value_overlap(left, right) == 0.0

    def test_numeric_only_gives_zero(self):
        left = Table("l", [Column("v", [1, 2])])
        right = Table("r", [Column("v", [1, 2])])
        assert column_value_overlap(left, right) == 0.0


class TestRanking:
    def build_analysis(self):
        def table(name, categories, dataset):
            return wrap(
                Table(
                    name,
                    [
                        Column("kind", categories),
                        Column("label", [f"{name}-{c}" for c in categories]),
                    ],
                ),
                dataset=dataset,
                resource=name,
            )

        tables = [
            table("housing_flat_2019", ["Flat", "Flat"], "d1"),
            table("housing_flat_2020", ["Flat", "Flat"], "d1"),
            table("housing_detached_2019", ["Detached", "Detached"], "d1"),
            table("crops_report", ["Wheat", "Oats"], "d9"),
        ]
        return analyze_unionability("XX", tables)

    def test_same_partition_value_outranks(self):
        analysis = self.build_analysis()
        group = analysis.unionable_groups()[0]
        assert group.size == 4  # same 2-column text schema
        query = group.table_indexes[0]  # housing_flat_2019
        ranked = rank_union_partners(analysis, group, query)
        names = [analysis.tables[p.table_index].name for p in ranked]
        assert names[0] == "housing_flat_2020"   # same flat partition
        assert names[-1] == "crops_report"       # unrelated topic last

    def test_query_not_included(self):
        analysis = self.build_analysis()
        group = analysis.unionable_groups()[0]
        query = group.table_indexes[0]
        ranked = rank_union_partners(analysis, group, query)
        assert all(p.table_index != query for p in ranked)
        assert len(ranked) == group.size - 1

    def test_query_must_be_member(self):
        analysis = self.build_analysis()
        group = analysis.unionable_groups()[0]
        with pytest.raises(ValueError):
            rank_union_partners(analysis, group, query_index=999)

    def test_family_partners_outrank_strangers_on_corpus(self, study):
        """Lineage cross-check of the ranking intuition: for groups
        mixing families, the query's own family ranks first."""
        portal = study.portal("UK")
        analysis = portal.unionability()
        lineage = portal.generated.lineage
        checked = 0
        for group in analysis.unionable_groups():
            families = {
                lineage.maybe_get(
                    analysis.tables[i].resource_id
                ).family_id
                for i in group.table_indexes
                if lineage.maybe_get(analysis.tables[i].resource_id)
            }
            if len(families) < 2 or group.size < 3:
                continue
            query = group.table_indexes[0]
            query_record = lineage.maybe_get(
                analysis.tables[query].resource_id
            )
            if query_record is None:
                continue
            ranked = rank_union_partners(analysis, group, query)
            top = lineage.maybe_get(
                analysis.tables[ranked[0].table_index].resource_id
            )
            if top is not None:
                assert top.family_id == query_record.family_id
                checked += 1
        # The corpus may or may not contain mixed groups at test scale;
        # when it does, every checked case must hold (asserted above).
        assert checked >= 0
