"""Integration tests: every experiment runs and reports sane data."""

import pytest

from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment


class TestRegistry:
    def test_twenty_experiments(self):
        ids = experiment_ids()
        assert len(ids) == 20
        assert [i for i in ids if i.startswith("table")] == [
            f"table{n:02d}" for n in range(1, 12)
        ]
        assert [i for i in ids if i.startswith("figure")] == [
            f"figure{n:02d}" for n in range(1, 9)
        ]
        assert [i for i in ids if i.startswith("supplementary")] == [
            "supplementary01"
        ]

    def test_unknown_experiment(self, study):
        with pytest.raises(KeyError):
            run_experiment("table99", study)


@pytest.mark.parametrize("experiment_id", list(EXPERIMENTS))
def test_experiment_runs(study, experiment_id):
    result = run_experiment(experiment_id, study)
    assert result.experiment_id == experiment_id
    assert result.title
    assert len(result.text) > 50
    assert "paper" in result.data


class TestHeadlineFindings:
    """The paper's qualitative findings must hold on the reproduction."""

    def test_table01_uk_has_most_declared_tables(self, study):
        data = run_experiment("table01", study).data
        totals = {c: data[c]["total_tables"] for c in ("SG", "CA", "UK", "US")}
        assert totals["UK"] == max(totals.values())
        assert totals["SG"] == min(totals.values())

    def test_table01_compression_around_five(self, study):
        data = run_experiment("table01", study).data
        for code in ("SG", "CA", "US"):
            assert 2.5 < data[code]["compression_ratio"] < 12.0

    def test_table02_sg_narrow_us_long(self, study):
        data = run_experiment("table02", study).data
        assert data["SG"]["median_columns"] <= min(
            data[c]["median_columns"] for c in ("CA", "UK", "US")
        )
        medians = sorted(
            data[c]["median_rows"] for c in ("SG", "CA", "UK", "US")
        )
        assert data["US"]["median_rows"] >= medians[-2]

    def test_table03_sg_structured_everywhere(self, study):
        data = run_experiment("table03", study).data
        assert data["SG"]["structured"] > 0.9
        for code in ("CA", "UK", "US"):
            assert data[code]["lacking"] > 0.4

    def test_table04_text_repeats_more_than_numbers(self, study):
        data = run_experiment("table04", study).data
        for code in ("CA", "UK", "US"):
            assert (
                data[code]["text"]["median_score"]
                <= data[code]["number"]["median_score"]
            )

    def test_table05_majority_have_fds(self, study):
        data = run_experiment("table05", study).data
        for code in ("CA", "UK", "US"):
            assert data[code]["frac_with_fd"] > 0.5

    def test_table05_decomposition_plausible(self, study):
        data = run_experiment("table05", study).data
        for code in ("CA", "UK", "US"):
            assert 2.0 <= data[code]["avg_fragments"] <= 6.0
            assert data[code]["uniqueness_gain"] >= 1.0

    def test_table06_nonkey_joinable_majority(self, study):
        data = run_experiment("table06", study).data
        for code in ("CA", "UK", "US"):
            assert data[code]["frac_key_joinable"] < 0.5
            assert 0.2 < data[code]["frac_joinable_tables"] <= 1.0

    def test_table07_majority_accidental(self, study):
        data = run_experiment("table07", study).data
        for code in ("CA", "UK", "US"):
            assert data[code]["frac_accidental"] > 0.5

    def test_table08_intra_more_useful(self, study):
        data = run_experiment("table08", study).data
        for code in ("CA", "UK", "US"):
            groups = data.get(code, {})
            if "inter" in groups and "intra" in groups:
                assert (
                    groups["intra"]["frac_useful"]
                    >= groups["inter"]["frac_useful"]
                )

    def test_table09_nonkey_nonkey_least_useful(self, study):
        # Pool the three portals' samples: per-portal cells hold ~17
        # pairs at test scale, too few for a stable comparison.
        from repro.joinability import JoinLabel, KEY_KEY, NONKEY_NONKEY

        pooled = []
        for code in ("CA", "UK", "US"):
            pooled.extend(study.portal(code).labeled_join_sample())

        def useful_rate(combo):
            cell = [p for p in pooled if p.key_combo == combo]
            if not cell:
                return None
            return sum(
                1 for p in cell if p.label is JoinLabel.USEFUL
            ) / len(cell)

        nonkey = useful_rate(NONKEY_NONKEY)
        keyed = useful_rate(KEY_KEY)
        assert nonkey is not None and keyed is not None
        assert nonkey <= keyed + 0.15

    def test_table10_incremental_overwhelmingly_accidental(self, study):
        data = run_experiment("table10", study).data
        for code in ("CA", "UK", "US"):
            groups = data.get(code, {})
            cell = groups.get("incremental integer")
            if cell and cell["n"] >= 5:
                assert cell["frac_useful"] <= 0.25

    def test_table11_unionability_prevalent_and_useful(self, study):
        data = run_experiment("table11", study).data
        for code in ("SG", "CA", "UK", "US"):
            assert data[code]["frac_unionable_tables"] > 0.15
        for code in ("CA", "UK"):
            assert data[code]["sample_frac_useful"] >= 0.8

    def test_figure01_top_decile_dominates(self, study):
        data = run_experiment("figure01", study).data
        assert data["US"]["frac_below_p90"] < 0.8

    def test_figure02_only_uk_chartable(self, study):
        data = run_experiment("figure02", study).data
        assert not data["UK"]["is_steplike"]
        assert data["CA"]["is_steplike"]
        assert data["US"]["is_steplike"]

    def test_figure04_sg_cleanest(self, study):
        data = run_experiment("figure04", study).data
        assert data["SG"]["frac_with_nulls"] < 0.15
        for code in ("CA", "UK", "US"):
            assert data[code]["frac_with_nulls"] > 0.3

    def test_figure06_no_key_tables_exist(self, study):
        data = run_experiment("figure06", study).data
        assert any(
            data[code]["frac_no_key"] > 0 for code in ("CA", "UK", "US")
        )
        # US publishes single keys often (the paper's closing note): it
        # must not be the portal with the fewest keyed tables.
        assert data["US"]["frac_no_single_key_all_tables"] < max(
            data[c]["frac_no_single_key_all_tables"]
            for c in ("SG", "CA", "UK")
        )

    def test_figure08_heavy_tail(self, study):
        data = run_experiment("figure08", study).data
        # US has by far the most pairs at any scale; the heavy-tail
        # check is only statistically stable there.
        assert data["US"]["max"] > 3 * data["US"]["median"]
        for code in ("CA", "UK"):
            assert data[code]["max"] >= data[code]["median"]

    def test_results_deterministic(self, study):
        first = run_experiment("table07", study).data
        second = run_experiment("table07", study).data
        assert first == second
