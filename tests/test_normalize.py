"""Tests for closure computation and BCNF decomposition (§4.3)."""

import random

import pytest

from repro.dataframe import Column, Table, inner_join
from repro.fd import FD, discover_fds
from repro.normalize import (
    attribute_closure,
    bcnf_decompose,
    is_superkey,
    normalization_stats,
    passes_size_filter,
)


class TestClosure:
    FDS = [
        FD(frozenset({"a"}), "b"),
        FD(frozenset({"b"}), "c"),
        FD(frozenset({"c", "d"}), "e"),
    ]

    def test_transitive_closure(self):
        assert attribute_closure({"a"}, self.FDS) == frozenset({"a", "b", "c"})

    def test_composite_activation(self):
        closure = attribute_closure({"a", "d"}, self.FDS)
        assert closure == frozenset({"a", "b", "c", "d", "e"})

    def test_superkey(self):
        attrs = ["a", "b", "c", "d", "e"]
        assert is_superkey({"a", "d"}, attrs, self.FDS)
        assert not is_superkey({"a"}, attrs, self.FDS)

    def test_empty_fds(self):
        assert attribute_closure({"x"}, []) == frozenset({"x"})


class TestSizeFilter:
    def test_bounds(self):
        ok = Table.from_rows(
            "t", [f"c{i}" for i in range(5)], [(i,) * 5 for i in range(10)]
        )
        assert passes_size_filter(ok)

    def test_too_narrow(self):
        table = Table.from_rows("t", ["a"], [(i,) for i in range(20)])
        assert not passes_size_filter(table)

    def test_too_short(self):
        table = Table.from_rows(
            "t", [f"c{i}" for i in range(6)], [(1,) * 6 for _ in range(5)]
        )
        assert not passes_size_filter(table)


class TestDecomposition:
    def test_already_bcnf(self):
        table = Table(
            "t", [Column("a", [1, 2, 3]), Column("b", [4, 5, 4])]
        )
        # b has repeats but no FD a->b (a is a key: trivial) — check.
        result = bcnf_decompose(table, random.Random(0))
        assert result.was_in_bcnf
        assert result.num_fragments == 1

    def test_splits_on_planted_fd(self, fish_table):
        result = bcnf_decompose(fish_table, random.Random(0))
        assert result.num_fragments >= 2
        # Some fragment holds exactly the species -> group mapping.
        mapping_fragment = next(
            (
                f
                for f in result.fragments
                if set(f.column_names) == {"species", "species_group"}
            ),
            None,
        )
        assert mapping_fragment is not None
        assert mapping_fragment.num_rows == 4  # one row per species

    def test_fragments_are_bcnf(self, fish_table):
        result = bcnf_decompose(fish_table, random.Random(1))
        for fragment in result.fragments:
            assert not discover_fds(fragment).has_nontrivial or all(
                not fd.lhs for fd in discover_fds(fragment)
            )

    def test_all_columns_covered(self, fish_table, cities_table):
        for table in (fish_table, cities_table):
            result = bcnf_decompose(table, random.Random(2))
            covered = {
                name for f in result.fragments for name in f.column_names
            }
            assert covered == set(table.column_names)

    def test_lossless_join(self, fish_table):
        """Re-joining the two fragments of one split must reproduce the
        original rows exactly (BCNF splits are lossless)."""
        result = bcnf_decompose(fish_table, random.Random(3))
        rebuilt = result.fragments[0]
        for fragment in result.fragments[1:]:
            shared = [
                c for c in rebuilt.column_names
                if c in set(fragment.column_names)
            ]
            if not shared:
                continue
            rebuilt = inner_join(rebuilt, fragment, shared[0], shared[0])
        original_rows = {
            tuple(sorted(zip(fish_table.column_names, row)))
            for row in fish_table.iter_rows()
        }
        rebuilt_rows = {
            tuple(
                sorted(
                    (name, value)
                    for name, value in zip(rebuilt.column_names, row)
                    if name in set(fish_table.column_names)
                )
            )
            for row in rebuilt.iter_rows()
        }
        assert original_rows <= rebuilt_rows

    def test_unrepeated_columns(self, fish_table):
        result = bcnf_decompose(fish_table, random.Random(4))
        unrepeated = result.unrepeated_columns()
        for name in unrepeated:
            holders = [
                f for f in result.fragments if name in set(f.column_names)
            ]
            assert len(holders) == 1

    def test_deterministic_given_rng(self, fish_table):
        a = bcnf_decompose(fish_table, random.Random(5))
        b = bcnf_decompose(fish_table, random.Random(5))
        assert [f.column_names for f in a.fragments] == [
            f.column_names for f in b.fragments
        ]


class TestNormalizationStats:
    def test_stats_on_corpus(self, study):
        portal = study.portal("CA")
        stats = portal.normalization()
        assert stats.total_tables == len(portal.filtered_tables())
        assert stats.tables_with_single_lhs_fd <= stats.tables_with_fd
        assert stats.tables_with_fd <= stats.total_tables
        assert sum(stats.fragment_histogram.values()) == stats.total_tables

    def test_fragments_at_least_two_when_decomposed(self, study):
        stats = study.portal("UK").normalization()
        for count, n in stats.fragment_histogram.items():
            assert count >= 1
            assert n >= 0
        if stats.tables_with_fd:
            assert stats.avg_fragments_not_bcnf >= 2.0

    def test_gain_positive(self, study):
        for portal in study:
            stats = portal.normalization()
            assert stats.avg_uniqueness_gain >= 1.0

    def test_empty_input(self):
        stats = normalization_stats("XX", [], seed=0)
        assert stats.total_tables == 0
        assert stats.frac_with_fd == 0.0
