"""Regression: DEGRADED (truncated-but-salvageable) tables must flow
through every analysis stage without crashing.

The ingest pipeline keeps truncated payloads that still parse
(``IngestedTable.degraded=True``) in ``clean_tables`` — so FD discovery,
joinability, unionability, and the guarded screen all see them.  Such
tables are often ragged at the tail (short final rows, a dangling
partial row dropped by the parser), which is exactly the shape that
used to trip naive per-column code.
"""

import random

import pytest

from repro.dataframe import Column, Table
from repro.fd import discover_fds
from repro.ingest.pipeline import IngestedTable
from repro.joinability import analyze_joinability
from repro.normalize.analysis import normalization_stats, table_normalization
from repro.profiling import screen_table
from repro.resilience import WorkMeter
from repro.unionability import analyze_unionability


def degraded(table: Table, dataset="d", resource=None) -> IngestedTable:
    return IngestedTable(
        portal_code="XX",
        dataset_id=dataset,
        resource_id=resource or table.name,
        name=table.name,
        url=f"https://x/{table.name}",
        raw=table,
        clean=table,
        raw_size_bytes=100,
        header_index=0,
        trailing_columns_removed=1,
        dropped_as_wide=False,
        degraded=True,
    )


@pytest.fixture
def tables():
    """A small degraded corpus: nulls at the tail, a shared key column."""
    rng = random.Random(13)
    n = 40
    ids = list(range(n))
    t1 = Table(
        "left",
        [
            Column("id", ids),
            Column("city", [f"city{v % 7}" for v in ids]),
            # Truncation nulls: the tail of the column never arrived.
            Column("pop", [rng.randint(0, 9) for _ in range(30)] + [None] * 10),
        ],
    )
    t2 = Table(
        "right",
        [
            Column("id", ids),
            Column("year", [2000 + (v % 3) for v in ids]),
        ],
    )
    t3 = Table(
        "empty_tail",
        [
            Column("id", []),
            Column("note", []),
        ],
    )
    return [
        degraded(t1, dataset="d1"),
        degraded(t2, dataset="d2"),
        degraded(t3, dataset="d3"),
    ]


def test_fd_discovery_survives(tables):
    for ingested in tables:
        fds = discover_fds(ingested.clean)
        assert not fds.truncated


def test_joinability_survives(tables):
    analysis = analyze_joinability("XX", tables, threshold=0.9, min_unique=10)
    assert analysis.stats.total_tables == 3
    # The shared id column should still be found joinable.
    assert analysis.stats.total_pairs >= 1


def test_unionability_survives(tables):
    analysis = analyze_unionability("XX", tables)
    assert analysis.stats.total_tables == 3
    assert analysis.stats.unique_schemas >= 2


def test_normalization_survives(tables):
    stats = normalization_stats(
        "XX", [t.clean for t in tables], seed=7, max_lhs=4
    )
    assert stats.total_tables == 3


def test_guarded_paths_survive(tables):
    """Degraded tables work under a meter too (the guarded pipeline)."""
    for ingested in tables:
        screen = screen_table(ingested.clean, WorkMeter())
        assert screen.n_rows == ingested.clean.num_rows
        contribution = table_normalization(
            ingested.clean, random.Random(1), max_lhs=4, meter=WorkMeter()
        )
        assert not contribution.truncated
    analysis = analyze_joinability(
        "XX", tables, threshold=0.9, min_unique=10, meter=WorkMeter()
    )
    assert not analysis.truncated
    union = analyze_unionability("XX", tables, meter=WorkMeter())
    assert union.stats.total_tables == 3
