"""Tests for the lake's persisted-join-index loading path."""

from __future__ import annotations

import json

import pytest

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.obs.metrics import MetricsRegistry
from repro.search.indexstore import JoinIndexStore
from repro.search.lake import DataLake

SCALE = 0.08
SEED = 2


def build_study(index_dir=None):
    return Study.build(
        StudyConfig(
            scale=SCALE,
            seed=SEED,
            join_index_dir=str(index_dir) if index_dir else None,
        )
    )


@pytest.fixture(scope="module")
def index_cycle(tmp_path_factory):
    """Two equal-seed studies sharing one index directory.

    The first lake misses everywhere and writes the index through; the
    second (fresh study, same config) must hit on every portal.
    """
    index_dir = tmp_path_factory.mktemp("join-index")
    first_metrics, second_metrics = MetricsRegistry(), MetricsRegistry()
    first_study = build_study(index_dir)
    first = DataLake(first_study, metrics=first_metrics)
    second_study = build_study(index_dir)
    second = DataLake(second_study, metrics=second_metrics)
    return {
        "index_dir": index_dir,
        "first": first,
        "first_metrics": first_metrics,
        "second": second,
        "second_metrics": second_metrics,
        "second_study": second_study,
    }


class TestWriteThrough:
    def test_first_lake_misses_and_persists(self, index_cycle):
        first = index_cycle["first"]
        assert first.index_loads == {"miss": 4}
        files = sorted(
            p.name for p in index_cycle["index_dir"].glob("join-*.json")
        )
        assert len(files) == 4
        assert (
            index_cycle["first_metrics"]
            .snapshot()["lake.index.miss"]["value"]
            == 4
        )

    def test_second_lake_hits(self, index_cycle):
        second = index_cycle["second"]
        assert second.index_loads == {"hit": 4}
        assert (
            index_cycle["second_metrics"]
            .snapshot()["lake.index.hit"]["value"]
            == 4
        )

    def test_hit_adopts_into_portal_cache(self, index_cycle):
        """A hit means joinability() never runs the pair search."""
        for portal in index_cycle["second_study"]:
            assert portal.peek_joinability() is not None

    def test_suggestions_identical_across_load_paths(self, index_cycle):
        first, second = index_cycle["first"], index_cycle["second"]
        for portal in index_cycle["second_study"]:
            analysis = portal.joinability()
            if not analysis.pairs:
                continue
            left_table = analysis.profiles[analysis.pairs[0].left].table_index
            resource = analysis.tables[left_table].resource_id
            assert [
                (s.partner_resource, s.jaccard, s.score)
                for s in first.suggest_joins(portal.code, resource)
            ] == [
                (s.partner_resource, s.jaccard, s.score)
                for s in second.suggest_joins(portal.code, resource)
            ]

    def test_suggest_joins_memoized(self, index_cycle):
        second = index_cycle["second"]
        study = index_cycle["second_study"]
        portal = next(iter(study))
        analysis = portal.joinability()
        resource = analysis.tables[0].resource_id
        once = second.suggest_joins(portal.code, resource)
        again = second.suggest_joins(portal.code, resource)
        assert [s.partner_resource for s in once] == [
            s.partner_resource for s in again
        ]


class TestStaleness:
    def test_foreign_fingerprint_is_stale_and_healed(self, tmp_path):
        index_dir = tmp_path / "idx"
        study = build_study(index_dir)
        DataLake(study, metrics=MetricsRegistry())  # writes the index
        store = JoinIndexStore(index_dir)
        for portal_code in study.config.portal_codes:
            path = store.path(portal_code, study.config.jaccard_threshold)
            document = json.loads(path.read_text(encoding="utf-8"))
            document["fingerprint"]["seed"] = SEED + 99
            path.write_text(json.dumps(document), encoding="utf-8")
        metrics = MetricsRegistry()
        fresh = DataLake(build_study(index_dir), metrics=metrics)
        assert fresh.index_loads == {"stale": 4}
        assert metrics.snapshot()["lake.index.stale"]["value"] == 4
        # Write-through healed the artifacts: next lake hits again.
        healed = DataLake(build_study(index_dir), metrics=MetricsRegistry())
        assert healed.index_loads == {"hit": 4}

    def test_no_store_no_tally(self):
        study = Study.build(StudyConfig(scale=SCALE, seed=SEED))
        lake = DataLake(study, metrics=MetricsRegistry())
        assert lake.index_loads == {}
