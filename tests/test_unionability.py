"""Tests for unionability analysis (§6 / Table 11)."""

from repro.dataframe import Column, Table
from repro.unionability import (
    UnionLabel,
    UnionOracle,
    UnionPattern,
    analyze_unionability,
    sample_union_pairs,
    schema_fingerprint,
    union_label_stats,
)
from tests.test_joinability_pairs import wrap


class TestFingerprint:
    def test_names_and_types(self):
        a = Table("a", [Column("x", [1]), Column("y", ["s"])])
        b = Table("b", [Column("x", [9]), Column("y", ["t"])])
        assert schema_fingerprint(a) == schema_fingerprint(b)

    def test_case_insensitive_names(self):
        a = Table("a", [Column("City", ["x"])])
        b = Table("b", [Column("city", ["y"])])
        assert schema_fingerprint(a) == schema_fingerprint(b)

    def test_type_mismatch_differs(self):
        a = Table("a", [Column("x", [1])])
        b = Table("b", [Column("x", ["1x"])])
        assert schema_fingerprint(a) != schema_fingerprint(b)

    def test_order_matters(self):
        a = Table("a", [Column("x", [1]), Column("y", [2])])
        b = Table("b", [Column("y", [1]), Column("x", [2])])
        assert schema_fingerprint(a) != schema_fingerprint(b)


class TestAnalysis:
    def make_tables(self):
        def t(name, names, dataset):
            return wrap(
                Table(name, [Column(n, [1, 2]) for n in names]),
                dataset=dataset,
                resource=name,
            )

        return [
            t("a1", ["x", "y"], "d1"),
            t("a2", ["x", "y"], "d1"),
            t("a3", ["x", "y"], "d2"),
            t("b1", ["p"], "d3"),
            t("b2", ["p"], "d3"),
            t("solo", ["q", "r", "s"], "d4"),
        ]

    def test_stats(self):
        analysis = analyze_unionability("XX", self.make_tables())
        stats = analysis.stats
        assert stats.total_tables == 6
        assert stats.unionable_tables == 5
        assert stats.unique_schemas == 3
        assert stats.unionable_schemas == 2
        assert stats.unionable_schemas_single_dataset == 1  # the b group
        assert stats.max_degree == 2
        assert stats.frac_unionable_tables == 5 / 6

    def test_groups(self):
        analysis = analyze_unionability("XX", self.make_tables())
        groups = analysis.unionable_groups()
        sizes = sorted(g.size for g in groups)
        assert sizes == [2, 3]

    def test_empty(self):
        stats = analyze_unionability("XX", []).stats
        assert stats.total_tables == 0
        assert stats.frac_unionable_tables == 0.0


class TestOracle:
    def test_on_corpus_patterns(self, study):
        for code in ("CA", "UK"):
            portal = study.portal(code)
            labeled = portal.labeled_union_sample()
            if not labeled:
                continue
            stats = union_label_stats(labeled)
            # The paper: CA/UK unionable samples are ~all useful.
            assert stats.frac_useful >= 0.85

    def test_us_duplicates_accidental(self, study):
        portal = study.portal("US")
        oracle = UnionOracle.from_recorder(portal.generated.lineage)
        duplicates = [
            record
            for record in portal.generated.lineage
            if record.duplicate_of is not None
        ]
        for record in duplicates:
            label, pattern = oracle.judge(
                record.resource_id, record.duplicate_of
            )
            assert label is UnionLabel.ACCIDENTAL
            assert pattern is UnionPattern.DUPLICATE

    def test_periodic_pairs_useful(self, study):
        portal = study.portal("UK")
        oracle = UnionOracle.from_recorder(portal.generated.lineage)
        by_family: dict[tuple, list] = {}
        for record in portal.generated.lineage:
            if record.period is not None and record.subtable_kind == "fact":
                by_family.setdefault(
                    (record.family_id, record.table_name.rsplit("_", 1)[0]),
                    [],
                ).append(record)
        checked = 0
        for records in by_family.values():
            if len(records) >= 2 and records[0].period != records[1].period:
                label, pattern = oracle.judge(
                    records[0].resource_id, records[1].resource_id
                )
                assert label is UnionLabel.USEFUL
                assert pattern is UnionPattern.PERIODIC
                checked += 1
        assert checked > 0

    def test_unknown_resources_default_useful(self):
        oracle = UnionOracle({})
        label, pattern = oracle.judge("x", "y")
        assert label is UnionLabel.USEFUL
        assert pattern is UnionPattern.UNKNOWN


class TestSampling:
    def test_sample_size_and_determinism(self, study):
        portal = study.portal("CA")
        oracle = UnionOracle.from_recorder(portal.generated.lineage)
        a = sample_union_pairs(portal.unionability(), oracle, seed=4,
                               sample_size=10)
        b = sample_union_pairs(portal.unionability(), oracle, seed=4,
                               sample_size=10)
        assert len(a) <= 10
        assert [(p.left_resource, p.right_resource) for p in a] == [
            (p.left_resource, p.right_resource) for p in b
        ]

    def test_pairs_share_schema(self, study):
        portal = study.portal("UK")
        analysis = portal.unionability()
        by_resource = {
            t.resource_id: t.clean for t in analysis.tables
        }
        for pair in portal.labeled_union_sample():
            left = by_resource[pair.left_resource]
            right = by_resource[pair.right_resource]
            assert schema_fingerprint(left) == schema_fingerprint(right)

    def test_no_groups_no_sample(self):
        analysis = analyze_unionability("XX", [])
        assert sample_union_pairs(analysis, UnionOracle({}), seed=1) == []
