"""Tests for the dataset-search facade (repro.search)."""

import pytest

from repro.search import DataLake, TextIndex, tokenize


class TestTokenize:
    def test_lowercase_and_split(self):
        assert tokenize("COVID-19 Daily Cases") == ["covid", "19", "daily",
                                                    "cases"]

    def test_stopwords_removed(self):
        assert tokenize("statistics of the fisheries") == ["fisheries"]

    def test_empty(self):
        assert tokenize("") == []


class TestTextIndex:
    def build(self):
        index = TextIndex()
        index.add("d1", "commercial fisheries landings by species")
        index.add("d2", "income tax filings by bracket")
        index.add("d3", "fisheries vessel registrations")
        return index

    def test_basic_search(self):
        hits = self.build().search("fisheries")
        assert {h.doc_id for h in hits} == {"d1", "d3"}

    def test_multi_term_coverage_preferred(self):
        hits = self.build().search("fisheries landings")
        assert hits[0].doc_id == "d1"
        assert set(hits[0].matched_terms) == {"fisheries", "landings"}

    def test_no_match(self):
        assert self.build().search("volcanoes") == []

    def test_limit(self):
        assert len(self.build().search("by", limit=1)) <= 1

    def test_duplicate_doc_rejected(self):
        index = TextIndex()
        index.add("d1", "x")
        with pytest.raises(ValueError):
            index.add("d1", "y")

    def test_len(self):
        assert len(self.build()) == 3


class TestDataLake:
    @pytest.fixture(scope="class")
    def lake(self, study):
        return DataLake(study)

    def test_search_finds_topical_datasets(self, lake):
        hits = lake.search("fisheries landings", limit=8)
        assert hits
        assert any("Fisheries" in h.title for h in hits)

    def test_search_covers_multiple_portals(self, lake):
        # Every portal publishes from the same blueprint pool, so a
        # common topic should surface hits from several portals.
        hits = lake.search("waste collection", limit=40)
        assert len({h.portal_code for h in hits}) >= 2

    def test_suggest_joins_ranked(self, lake, study):
        portal = study.portal("US")
        analysis = portal.joinability()
        # Pick a table that definitely has joinable partners.
        table_index = next(iter(analysis.table_neighbors))
        resource = analysis.tables[table_index].resource_id
        suggestions = lake.suggest_joins("US", resource, limit=5)
        assert suggestions
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)
        for suggestion in suggestions:
            assert 0.0 < suggestion.jaccard <= 1.0
            assert suggestion.partner_resource != resource

    def test_suggest_joins_unknown_resource(self, lake):
        with pytest.raises(KeyError):
            lake.suggest_joins("US", "nope")

    def test_suggest_unions(self, lake, study):
        portal = study.portal("UK")
        analysis = portal.unionability()
        group = max(analysis.unionable_groups(), key=lambda g: g.size)
        resource = analysis.tables[group.table_indexes[0]].resource_id
        suggestions = lake.suggest_unions("UK", resource, limit=5)
        assert suggestions
        assert len(suggestions) <= min(5, group.size - 1)
        relatedness = [s.relatedness for s in suggestions]
        assert relatedness == sorted(relatedness, reverse=True)

    def test_suggest_unions_solo_table(self, lake, study):
        portal = study.portal("UK")
        analysis = portal.unionability()
        solo = next(
            (g for g in analysis.groups if g.size == 1), None
        )
        if solo is not None:
            resource = analysis.tables[solo.table_indexes[0]].resource_id
            assert lake.suggest_unions("UK", resource) == []


class TestBringYourOwnTable:
    @pytest.fixture(scope="class")
    def lake(self, study):
        return DataLake(study)

    def test_external_column_finds_partners(self, lake, study):
        from repro.dataframe import Column, Table
        from repro.generator.vocab import CA_PROVINCES

        external = Table(
            "my_upload", [Column("region", list(CA_PROVINCES))]
        )
        hits = lake.find_joinable_for_column(external, "region", k=8)
        assert hits
        assert hits[0].overlap > 5
        # Provinces live in the CA portal's shared geo domain.
        assert any(h.portal_code == "CA" for h in hits)
        overlaps = [h.overlap for h in hits]
        assert overlaps == sorted(overlaps, reverse=True)

    def test_unmatchable_column_returns_nothing(self, lake):
        from repro.dataframe import Column, Table

        external = Table(
            "odd", [Column("x", [f"zzz-{i}" for i in range(30)])]
        )
        assert lake.find_joinable_for_column(external, "x", k=5) == []

    def test_unknown_column_raises(self, lake):
        from repro.dataframe import Column, Table

        external = Table("t", [Column("a", [1])])
        with pytest.raises(Exception):
            lake.find_joinable_for_column(external, "missing")
