"""Tests for the dataset-search facade (repro.search)."""

import pytest

from repro.resilience import WorkMeter
from repro.search import DataLake, TextIndex, tokenize


class TestTokenize:
    def test_lowercase_and_split(self):
        assert tokenize("COVID-19 Daily Cases") == ["covid", "19", "daily",
                                                    "cases"]

    def test_stopwords_removed(self):
        assert tokenize("statistics of the fisheries") == ["fisheries"]

    def test_empty(self):
        assert tokenize("") == []


class TestTextIndex:
    def build(self):
        index = TextIndex()
        index.add("d1", "commercial fisheries landings by species")
        index.add("d2", "income tax filings by bracket")
        index.add("d3", "fisheries vessel registrations")
        return index

    def test_basic_search(self):
        hits = self.build().search("fisheries")
        assert {h.doc_id for h in hits} == {"d1", "d3"}

    def test_multi_term_coverage_preferred(self):
        hits = self.build().search("fisheries landings")
        assert hits[0].doc_id == "d1"
        assert set(hits[0].matched_terms) == {"fisheries", "landings"}

    def test_no_match(self):
        assert self.build().search("volcanoes") == []

    def test_limit(self):
        assert len(self.build().search("by", limit=1)) <= 1

    def test_duplicate_doc_rejected(self):
        index = TextIndex()
        index.add("d1", "x")
        with pytest.raises(ValueError):
            index.add("d1", "y")

    def test_len(self):
        assert len(self.build()) == 3


class TestTextIndexEdgeCases:
    def build(self):
        index = TextIndex()
        index.add("d1", "commercial fisheries landings by species")
        index.add("d2", "income tax filings by bracket")
        index.add("d3", "fisheries vessel registrations")
        return index

    def test_empty_query(self):
        assert self.build().search("") == []

    def test_stopword_only_query(self):
        assert self.build().search("of the and by") == []

    def test_punctuation_only_query(self):
        assert self.build().search("?!... --- ///") == []

    def test_query_against_empty_index(self):
        assert TextIndex().search("fisheries") == []

    def test_limit_zero_and_negative(self):
        index = self.build()
        assert index.search("fisheries", limit=0) == []
        assert index.search("fisheries", limit=-3) == []

    def test_tie_break_is_deterministic_by_doc_id(self):
        index = TextIndex()
        # Identical documents added in non-sorted order tie exactly.
        index.add("z9", "glacier melt observations")
        index.add("a1", "glacier melt observations")
        index.add("m5", "glacier melt observations")
        hits = index.search("glacier melt")
        assert [h.doc_id for h in hits] == ["a1", "m5", "z9"]
        assert len({h.score for h in hits}) == 1

    def test_meter_truncates_to_ranked_partial(self):
        # "fisheries" has two postings (d1, d3); a one-tick budget
        # exhausts on the second and ranks what was scored so far.
        index = self.build()
        full = index.search("fisheries")
        meter = WorkMeter(1)
        partial = index.search("fisheries", meter=meter)
        assert meter.exhausted
        assert len(partial) < len(full)
        # What was scored before exhaustion is still rank-ordered.
        scores = [h.score for h in partial]
        assert scores == sorted(scores, reverse=True)

    def test_unlimited_meter_matches_unmetered(self):
        index = self.build()
        meter = WorkMeter(None)
        assert index.search("fisheries by", meter=meter) == index.search(
            "fisheries by"
        )
        assert meter.spent > 0


class TestDataLake:
    @pytest.fixture(scope="class")
    def lake(self, study):
        return DataLake(study)

    def test_search_finds_topical_datasets(self, lake):
        hits = lake.search("fisheries landings", limit=8)
        assert hits
        assert any("Fisheries" in h.title for h in hits)

    def test_search_covers_multiple_portals(self, lake):
        # Every portal publishes from the same blueprint pool, so a
        # common topic should surface hits from several portals.
        hits = lake.search("waste collection", limit=40)
        assert len({h.portal_code for h in hits}) >= 2

    def test_suggest_joins_ranked(self, lake, study):
        portal = study.portal("US")
        analysis = portal.joinability()
        # Pick a table that definitely has joinable partners.
        table_index = next(iter(analysis.table_neighbors))
        resource = analysis.tables[table_index].resource_id
        suggestions = lake.suggest_joins("US", resource, limit=5)
        assert suggestions
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)
        for suggestion in suggestions:
            assert 0.0 < suggestion.jaccard <= 1.0
            assert suggestion.partner_resource != resource

    def test_suggest_joins_unknown_resource(self, lake):
        with pytest.raises(KeyError):
            lake.suggest_joins("US", "nope")

    def test_suggest_unions(self, lake, study):
        portal = study.portal("UK")
        analysis = portal.unionability()
        group = max(analysis.unionable_groups(), key=lambda g: g.size)
        resource = analysis.tables[group.table_indexes[0]].resource_id
        suggestions = lake.suggest_unions("UK", resource, limit=5)
        assert suggestions
        assert len(suggestions) <= min(5, group.size - 1)
        relatedness = [s.relatedness for s in suggestions]
        assert relatedness == sorted(relatedness, reverse=True)

    def test_suggest_unions_solo_table(self, lake, study):
        portal = study.portal("UK")
        analysis = portal.unionability()
        solo = next(
            (g for g in analysis.groups if g.size == 1), None
        )
        if solo is not None:
            resource = analysis.tables[solo.table_indexes[0]].resource_id
            assert lake.suggest_unions("UK", resource) == []


class TestDegradedStudyIndexing:
    """A degraded study (quarantined/failed tables) must still index."""

    @pytest.fixture(scope="class")
    def poison_lake(self, tmp_path_factory):
        from repro.core.config import StudyConfig
        from repro.core.study import Study
        from repro.obs.metrics import MetricsRegistry

        study = Study.build(
            StudyConfig(
                scale=0.05,
                seed=7,
                poison_rate=0.25,
                stage_budget=40_000,
                quarantine_dir=str(
                    tmp_path_factory.mktemp("lake-poison") / "q"
                ),
            )
        )
        metrics = MetricsRegistry()
        lake = DataLake(study, metrics=metrics)
        yield lake, study, metrics
        study.close()

    def test_construction_skips_instead_of_raising(self, poison_lake):
        lake, study, metrics = poison_lake
        quarantined = {
            resource_id
            for portal in study
            for resource_id in portal.executor.quarantined
        }
        assert quarantined, "poison corpus produced no quarantined tables"
        assert metrics.value("lake.index.skipped") >= len(quarantined)

    def test_search_still_answers(self, poison_lake):
        lake, study, _ = poison_lake
        # Query with a term drawn from a real dataset title so the
        # assertion holds at any corpus scale.
        portal = next(iter(study))
        terms = [
            term
            for dataset in portal.generated.portal.datasets
            for term in tokenize(dataset.title)
        ]
        assert terms
        assert lake.search(terms[0], limit=5)

    def test_skips_are_logged_not_raised(self, tmp_path_factory, capsys):
        from repro.core.config import StudyConfig
        from repro.core.study import Study

        study = Study.build(
            StudyConfig(
                scale=0.05,
                seed=7,
                poison_rate=0.25,
                stage_budget=40_000,
                quarantine_dir=str(
                    tmp_path_factory.mktemp("lake-poison-log") / "q"
                ),
            )
        )
        try:
            DataLake(study)
        finally:
            study.close()
        err = capsys.readouterr().err
        assert "lake-index-skip" in err


class TestBringYourOwnTable:
    @pytest.fixture(scope="class")
    def lake(self, study):
        return DataLake(study)

    def test_external_column_finds_partners(self, lake, study):
        from repro.dataframe import Column, Table
        from repro.generator.vocab import CA_PROVINCES

        external = Table(
            "my_upload", [Column("region", list(CA_PROVINCES))]
        )
        hits = lake.find_joinable_for_column(external, "region", k=8)
        assert hits
        assert hits[0].overlap > 5
        # Provinces live in the CA portal's shared geo domain.
        assert any(h.portal_code == "CA" for h in hits)
        overlaps = [h.overlap for h in hits]
        assert overlaps == sorted(overlaps, reverse=True)

    def test_unmatchable_column_returns_nothing(self, lake):
        from repro.dataframe import Column, Table

        external = Table(
            "odd", [Column("x", [f"zzz-{i}" for i in range(30)])]
        )
        assert lake.find_joinable_for_column(external, "x", k=5) == []

    def test_unknown_column_raises(self, lake):
        from repro.dataframe import Column, Table

        external = Table("t", [Column("a", [1])])
        with pytest.raises(Exception):
            lake.find_joinable_for_column(external, "missing")
